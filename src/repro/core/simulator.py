"""Trace-driven multiprocessor simulation (§6, §7).

This is the paper's measurement instrument: given an access trace of a
single-assignment kernel and a machine configuration (number of PEs,
page size, cache), classify every access as write / local read / cached
read / remote read under the automatic partitioning rules of §2:

* every array is paged with the configured page size and pages are
  mapped to PEs by the partition scheme (modulo by default);
* the **owner-computes rule** assigns each statement instance to the PE
  owning the written element's page ("control partitioning");
* reads of pages the executing PE owns are *local*; other reads consult
  the PE's page cache — a hit is a *cached read*, a miss is a *remote
  read* that fetches and caches the page.

The simulation is untimed (the paper's is too); the discrete-event
model in :mod:`repro.machine` adds latency and contention on top.

Because the trace is independent of the machine configuration, one
interpreter run drives a whole parameter sweep.  Owner computations are
vectorised with NumPy; the only per-access Python work is the cache
walk, which is run-length compressed (consecutive touches of the same
page collapse into one cache probe plus arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from ..cache import make_cache
from ..ir.loops import Program
from ..obs.profile import phase as _phase
from ..ir.trace import Trace
from ..memory.pages import PageTable
from .access import AccessKind
from .partition import ModuloPartition, PartitionScheme, named_scheme
from .stats import AccessStats

__all__ = [
    "MachineConfig",
    "SimResult",
    "SubrangeGroup",
    "simulate",
    "simulate_program",
    "subrange_groups",
    "subrange_placement",
]


@dataclass(frozen=True)
class MachineConfig:
    """One point in the paper's parameter space.

    ``cache_elems`` is the *total* cache capacity in array elements
    (the paper fixes 256); the number of cache pages is derived from
    the page size, as in §6 ("the number of cache pages is dependent
    on the page size").  ``cache_elems=0`` disables caching (the "No
    Cache" series of Figures 1-4).
    """

    n_pes: int
    page_size: int
    cache_elems: int = 256
    cache_policy: str = "lru"
    partition: PartitionScheme = field(default_factory=ModuloPartition)
    # How accumulations (Reduction statements) are executed:
    #   "host"     — every fold runs on the accumulator's owner, which
    #                reads all contributions (the paper's baseline:
    #                reductions funnel through one host PE);
    #   "subrange" — each fold runs on the PE owning the page of its
    #                first read, accumulating into a local partial; the
    #                host then collects one partial per contributing PE
    #                (§9: "extension of the host processor mechanism to
    #                allow collection of subrange results").
    reduction_strategy: str = "host"

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ValueError("need at least one PE")
        if self.page_size <= 0:
            raise ValueError("page size must be positive")
        if self.cache_elems < 0:
            raise ValueError("cache size must be nonnegative")
        if self.reduction_strategy not in ("host", "subrange"):
            raise ValueError(
                f"unknown reduction strategy {self.reduction_strategy!r}"
            )

    @property
    def cache_pages(self) -> int:
        """Cache capacity in pages (0 disables the cache)."""
        return self.cache_elems // self.page_size

    @property
    def has_cache(self) -> bool:
        return self.cache_pages > 0

    def without_cache(self) -> "MachineConfig":
        return replace(self, cache_elems=0)

    def label(self) -> str:
        """Unique, stable identifier of this configuration.

        Every axis that distinguishes two configurations appears:
        the partition by its parameterised label (so "block-cyclic:2"
        and "block-cyclic:4" differ) and, when not at their defaults,
        the cache policy and reduction strategy.  Default-valued
        configurations keep their historical labels.
        """
        cache = f"cache={self.cache_elems}" if self.has_cache else "no-cache"
        parts = [
            f"pes={self.n_pes}",
            f"ps={self.page_size}",
            cache,
            self.partition.label,
        ]
        if self.has_cache and self.cache_policy != "lru":
            parts.append(f"policy={self.cache_policy}")
        if self.reduction_strategy != "host":
            parts.append(f"red={self.reduction_strategy}")
        return " ".join(parts)

    # -- (de)serialisation -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form; the partition travels by scheme name."""
        return {
            "n_pes": self.n_pes,
            "page_size": self.page_size,
            "cache_elems": self.cache_elems,
            "cache_policy": self.cache_policy,
            "partition": self.partition.label,
            "reduction_strategy": self.reduction_strategy,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "MachineConfig":
        extra = set(data) - {
            "n_pes",
            "page_size",
            "cache_elems",
            "cache_policy",
            "partition",
            "reduction_strategy",
        }
        if extra:
            raise ValueError(f"unknown machine config keys: {sorted(extra)}")
        return MachineConfig(
            n_pes=int(data["n_pes"]),  # type: ignore[arg-type]
            page_size=int(data["page_size"]),  # type: ignore[arg-type]
            cache_elems=int(data.get("cache_elems", 256)),  # type: ignore[arg-type]
            cache_policy=str(data.get("cache_policy", "lru")),
            partition=named_scheme(str(data.get("partition", "modulo"))),
            reduction_strategy=str(data.get("reduction_strategy", "host")),
        )


@dataclass
class SimResult:
    """Counters produced by one simulation run."""

    config: MachineConfig
    stats: AccessStats
    # Pages fetched over the network, per PE (== remote reads: every
    # remote read fetches its page; with the cache the page then stays).
    page_fetches: np.ndarray
    # Distinct (array, page) pairs each PE fetched at least once.
    distinct_pages_fetched: np.ndarray

    @property
    def remote_read_pct(self) -> float:
        return self.stats.remote_read_pct

    @property
    def cached_read_pct(self) -> float:
        return self.stats.cached_read_pct

    def summary(self) -> dict[str, float]:
        out = self.stats.summary()
        out["page_fetches"] = float(self.page_fetches.sum())
        return out

    def __repr__(self) -> str:
        return f"SimResult({self.config.label()}: {self.stats!r})"


def _owners_by_array(
    arr_ids: np.ndarray,
    pages: np.ndarray,
    tables: list[PageTable],
    scheme: PartitionScheme,
    n_pes: int,
) -> np.ndarray:
    """Vectorised page→owner lookup across arrays."""
    owners = np.empty(len(pages), dtype=np.int64)
    for array_id, table in enumerate(tables):
        mask = arr_ids == array_id
        if mask.any():
            owners[mask] = scheme.owners_of(pages[mask], table.n_pages, n_pes)
    return owners


def subrange_placement(
    trace: Trace,
    tables: list[PageTable],
    config: MachineConfig,
    exec_pe: np.ndarray,
) -> np.ndarray:
    """Re-place reduction folds onto the owners of their first read.

    Under the "subrange" strategy (§9's host-processor extension) each
    contribution to an accumulator is evaluated where its data lives,
    into a PE-local partial sum; only the partials travel to the host.
    Folds with no reads stay on the accumulator's owner.

    Shared by the untimed simulator and the timed machine
    (:class:`repro.machine.msim.TimedMachine`), so both backends agree
    on *which* PEs reduce together — the differential fidelity suite
    (``tests/test_timed_fidelity.py``) holds them to it.
    """
    exec_pe = exec_pe.copy()
    red_idx = np.flatnonzero(trace.reduction_mask)
    starts = trace.r_ptr[red_idx]
    ends = trace.r_ptr[red_idx + 1]
    has_reads = ends > starts
    readers = red_idx[has_reads]
    first_read = starts[has_reads]
    first_arr = trace.r_arr[first_read]
    first_pages = trace.r_flat[first_read] // config.page_size
    exec_pe[readers] = _owners_by_array(
        first_arr, first_pages, tables, config.partition, config.n_pes
    )
    return exec_pe


@dataclass(frozen=True)
class SubrangeGroup:
    """One accumulator's combine group under the "subrange" strategy.

    ``contributors`` is the sorted tuple of PEs holding a partial for
    this accumulator; ``host`` is the accumulator cell's owner, which
    gathers the partials and performs the final write.
    """

    array_id: int
    flat: int
    host: int
    contributors: tuple[int, ...]

    @property
    def remote_partials(self) -> int:
        return sum(1 for pe in self.contributors if pe != self.host)

    @property
    def local_partials(self) -> int:
        return sum(1 for pe in self.contributors if pe == self.host)


def subrange_groups(
    trace: Trace,
    tables: list[PageTable],
    config: MachineConfig,
    exec_pe: np.ndarray,
) -> list[SubrangeGroup]:
    """Group reduction folds by accumulator cell, in trace order.

    The single definition of *which* PEs reduce together: the untimed
    simulator charges the combine phase from these groups and the
    timed machine schedules its gather messages from them, so the two
    backends can never disagree on the reduction pattern.
    """
    red_idx = np.flatnonzero(trace.reduction_mask)
    # accumulator cell id -> set of contributing PEs
    acc_cells: dict[tuple[int, int], set[int]] = {}
    for i in red_idx.tolist():
        key = (int(trace.w_arr[i]), int(trace.w_flat[i]))
        acc_cells.setdefault(key, set()).add(int(exec_pe[i]))
    groups = []
    for (arr, flat), contributors in acc_cells.items():
        page = flat // config.page_size
        host = config.partition.owner_of(
            page, tables[arr].n_pages, config.n_pes
        )
        groups.append(
            SubrangeGroup(arr, flat, host, tuple(sorted(contributors)))
        )
    return groups


def _charge_subrange_combine(
    trace: Trace,
    tables: list[PageTable],
    config: MachineConfig,
    exec_pe: np.ndarray,
    stats: AccessStats,
) -> None:
    """Account the combine phase of subrange reductions.

    For each accumulator cell, the host (the cell's owner) pulls one
    partial result from every *other* PE that contributed — charged as
    remote reads at the host — reads its own partial locally if it made
    one, and performs the final write.
    """
    for group in subrange_groups(trace, tables, config, exec_pe):
        stats.add(
            group.host,
            AccessKind.REMOTE_READ,
            group.remote_partials,
            array_id=group.array_id,
        )
        stats.add(
            group.host,
            AccessKind.LOCAL_READ,
            group.local_partials,
            array_id=group.array_id,
        )
        stats.add(group.host, AccessKind.WRITE, 1, array_id=group.array_id)


def simulate(trace: Trace, config: MachineConfig) -> SimResult:
    """Classify every access in ``trace`` under ``config``."""
    n_pes = config.n_pes
    ps = config.page_size
    tables = [PageTable(size, ps) for size in trace.array_sizes]
    stats = AccessStats(n_pes, trace.array_names)

    if trace.n_instances == 0:
        return SimResult(
            config,
            stats,
            np.zeros(n_pes, dtype=np.int64),
            np.zeros(n_pes, dtype=np.int64),
        )

    # --- owner-computes: executing PE of each statement instance -----------
    # Profiling phases (classify / cache_sim / reduction) bracket the
    # hot regions for `repro.obs` — free no-op context managers unless
    # a collector or the event sink is active.
    with _phase("classify"):
        w_pages = trace.w_flat // ps
        exec_pe = _owners_by_array(
            trace.w_arr, w_pages, tables, config.partition, n_pes
        )
        if (
            config.reduction_strategy == "subrange"
            and trace.reduction_mask.any()
        ):
            exec_pe = subrange_placement(trace, tables, config, exec_pe)
        stats.add_vector(
            AccessKind.WRITE, np.bincount(exec_pe, minlength=n_pes)
        )

    def finish(
        page_fetches: np.ndarray, distinct_pages: np.ndarray
    ) -> SimResult:
        with _phase("reduction"):
            if (
                config.reduction_strategy == "subrange"
                and trace.reduction_mask.any()
            ):
                _charge_subrange_combine(
                    trace, tables, config, exec_pe, stats
                )
        return SimResult(config, stats, page_fetches, distinct_pages)

    if trace.n_reads == 0:
        return finish(
            np.zeros(n_pes, dtype=np.int64), np.zeros(n_pes, dtype=np.int64)
        )

    # --- read classification -------------------------------------------------
    with _phase("classify"):
        reads_per_instance = np.diff(trace.r_ptr)
        r_exec = np.repeat(exec_pe, reads_per_instance)
        r_pages = trace.r_flat // ps
        r_owner = _owners_by_array(
            trace.r_arr, r_pages, tables, config.partition, n_pes
        )
        local_mask = r_owner == r_exec
        stats.add_vector(
            AccessKind.LOCAL_READ,
            np.bincount(r_exec[local_mask], minlength=n_pes),
        )

        nonlocal_idx = np.flatnonzero(~local_mask)
    page_fetches = np.zeros(n_pes, dtype=np.int64)
    distinct_pages = np.zeros(n_pes, dtype=np.int64)
    if nonlocal_idx.size == 0:
        return finish(page_fetches, distinct_pages)

    nl_exec = r_exec[nonlocal_idx]
    nl_arr = trace.r_arr[nonlocal_idx].astype(np.int64)
    nl_page = r_pages[nonlocal_idx]

    if not config.has_cache:
        with _phase("cache_sim"):
            remote = np.bincount(nl_exec, minlength=n_pes)
            stats.add_vector(AccessKind.REMOTE_READ, remote)
            page_fetches += remote
            for pe in range(n_pes):
                mask = nl_exec == pe
                if mask.any():
                    distinct_pages[pe] = len(
                        np.unique(nl_arr[mask] * (1 << 40) + nl_page[mask])
                    )
        return finish(page_fetches, distinct_pages)

    # --- cache walk, per PE, run-length compressed ---------------------------
    # Composite key packs (array, page) into one int64 for fast comparison.
    with _phase("cache_sim"):
        composite = nl_arr * (1 << 40) + nl_page
        cached_per_pe = np.zeros(n_pes, dtype=np.int64)
        remote_per_pe = np.zeros(n_pes, dtype=np.int64)
        for pe in range(n_pes):
            mask = nl_exec == pe
            if not mask.any():
                continue
            keys = composite[mask]
            arrs = nl_arr[mask]
            pages = nl_page[mask]
            # Run boundaries: positions where the page key changes.
            change = np.empty(len(keys), dtype=bool)
            change[0] = True
            np.not_equal(keys[1:], keys[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            run_lengths = np.diff(np.append(starts, len(keys)))
            cache = make_cache(config.cache_policy, config.cache_pages)
            cached = 0
            remote = 0
            for start, length in zip(starts.tolist(), run_lengths.tolist()):
                hit = cache.access((int(arrs[start]), int(pages[start])))
                if hit:
                    cached += length
                else:
                    remote += 1
                    cached += length - 1
            cached_per_pe[pe] = cached
            remote_per_pe[pe] = remote
            distinct_pages[pe] = len(np.unique(keys))
        stats.add_vector(AccessKind.CACHED_READ, cached_per_pe)
        stats.add_vector(AccessKind.REMOTE_READ, remote_per_pe)
        page_fetches += remote_per_pe
    return finish(page_fetches, distinct_pages)


def simulate_program(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    config: MachineConfig,
) -> SimResult:
    """Interpret ``program`` over ``inputs`` and simulate the trace."""
    from ..ir.interp import run_program

    result = run_program(program, inputs)
    return simulate(result.trace, config)
