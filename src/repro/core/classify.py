"""Access-distribution classification (§7.1).

The paper sorts the Livermore Loops into four classes "by examining
graphs produced by the simulation data":

* **Class 1 — Matched** (§7.1.1): all indices equal; 0% remote.
* **Class 2 — Skewed** (§7.1.2): indices offset by a constant; remote
  accesses only past page boundaries; caching pays off with the skew.
* **Class 3 — Cyclic** (§7.1.3): a fixed set of pages re-visited in
  cyclic order (index-velocity mismatch as in ICCG, or
  multi-dimensional strides as in 2-D hydrodynamics); caching becomes
  "nearly perfect as the number of PEs increase".
* **Class 4 — Random** (§7.1.4): indirect subscripts or very large
  multi-dimensional skews; the small cache barely helps.

We reproduce this with a two-stage classifier.  The *static* stage
analyses linearised affine subscripts and yields a structural hint
(matched / constant skew / velocity mismatch / indirect).  The
*dynamic* stage — the arbiter, exactly as in the paper — runs the
trace-driven simulator over a small PE sweep and applies the behavioural
signatures quoted above.  Thresholds are module constants, documented
where defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from ..ir.expr import AffineForm
from ..ir.loops import Loop, Program
from ..ir.stmt import Reduction, Statement
from ..ir.trace import Trace
from ..memory.linearize import row_major_strides
from .simulator import MachineConfig, simulate

__all__ = [
    "AccessClass",
    "Classification",
    "DynamicEvidence",
    "ReadPattern",
    "StaticEvidence",
    "classify",
    "classify_dynamic",
    "classify_static",
]


class AccessClass(IntEnum):
    """The paper's four classes, ordered by communication severity."""

    MATCHED = 1
    SKEWED = 2
    CYCLIC = 3
    RANDOM = 4

    def __str__(self) -> str:
        return self.name.capitalize()


# --------------------------------------------------------------------------
# static stage
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadPattern:
    """Structural relation of one read to its statement's write."""

    stmt_id: int
    array: str
    kind: AccessClass
    skew: int | None = None          # constant linearised offset, if any
    write_stride: Fraction | None = None  # linearised stride per innermost iter
    read_stride: Fraction | None = None

    def describe(self) -> str:
        if self.kind is AccessClass.MATCHED:
            return f"{self.array}: matched"
        if self.kind is AccessClass.SKEWED:
            return f"{self.array}: constant skew {self.skew}"
        if self.kind is AccessClass.CYCLIC:
            return (
                f"{self.array}: velocity mismatch "
                f"(write stride {self.write_stride}, read stride {self.read_stride})"
            )
        return f"{self.array}: indirect/non-affine subscript"


@dataclass
class StaticEvidence:
    """All per-read patterns plus the aggregated structural hint."""

    hint: AccessClass
    patterns: list[ReadPattern] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def worst(self) -> AccessClass:
        if not self.patterns:
            return AccessClass.MATCHED
        return AccessClass(max(p.kind for p in self.patterns))


def _statement_contexts(
    program: Program,
) -> list[tuple[Statement, list[Loop]]]:
    out: list[tuple[Statement, list[Loop]]] = []

    def rec(body: Sequence[Loop | Statement], loops: list[Loop]) -> None:
        for node in body:
            if isinstance(node, Loop):
                rec(node.body, loops + [node])
            else:
                out.append((node, list(loops)))

    rec(program.body, [])
    return out


def _linearized_form(
    forms: tuple[AffineForm, ...], shape: tuple[int, ...]
) -> AffineForm:
    strides = row_major_strides(shape)
    total = AffineForm.constant(0)
    for form, stride in zip(forms, strides):
        total = total + form.scale(Fraction(stride))
    return total


def classify_static(program: Program) -> StaticEvidence:
    """Structural classification from affine subscript analysis.

    The innermost-loop *stride* distinguishes sequential skews (stride
    ±1 — the paper's SD) from multi-dimensional page-revisiting skews
    (|stride| > 1 — CD "arising from the multidimensionality of the
    arrays", §7.1.3).  Non-constant read/write offset differences are
    velocity mismatches (CD); indirect or non-affine subscripts are RD.
    """
    patterns: list[ReadPattern] = []
    notes: list[str] = []
    for stmt, loops in _statement_contexts(program):
        if isinstance(stmt, Reduction):
            notes.append(
                f"stmt {stmt.stmt_id}: reduction routed to host processor; "
                "excluded from structural classification"
            )
            continue
        inner_var = loops[-1].var if loops else None
        w_forms = stmt.target.sub_affine()
        w_shape = program.arrays[stmt.target.array].shape
        w_lin = (
            _linearized_form(w_forms, w_shape) if w_forms is not None else None
        )
        for ref in stmt.reads():
            r_forms = ref.sub_affine()
            if r_forms is None or w_lin is None:
                patterns.append(
                    ReadPattern(stmt.stmt_id, ref.array, AccessClass.RANDOM)
                )
                continue
            r_shape = program.arrays[ref.array].shape
            r_lin = _linearized_form(r_forms, r_shape)
            w_stride = w_lin.coeff(inner_var) if inner_var else Fraction(0)
            r_stride = r_lin.coeff(inner_var) if inner_var else Fraction(0)
            diff = r_lin - w_lin
            if diff.is_constant:
                skew = diff.const
                if skew == 0:
                    kind = AccessClass.MATCHED
                elif abs(w_stride) <= 1 and abs(r_stride) <= 1:
                    kind = AccessClass.SKEWED
                else:
                    # Constant skew but non-unit stride: pages re-visited
                    # as the outer dimension advances (2-D hydro case).
                    kind = AccessClass.CYCLIC
                patterns.append(
                    ReadPattern(
                        stmt.stmt_id,
                        ref.array,
                        kind,
                        skew=int(skew) if skew.denominator == 1 else None,
                        write_stride=w_stride,
                        read_stride=r_stride,
                    )
                )
            else:
                patterns.append(
                    ReadPattern(
                        stmt.stmt_id,
                        ref.array,
                        AccessClass.CYCLIC,
                        write_stride=w_stride,
                        read_stride=r_stride,
                    )
                )
    evidence = StaticEvidence(hint=AccessClass.MATCHED, patterns=patterns, notes=notes)
    evidence.hint = evidence.worst()
    return evidence


# --------------------------------------------------------------------------
# dynamic stage
# --------------------------------------------------------------------------

#: PE counts probed by the dynamic classifier (small & large, as in the
#: paper's figures which span 1-32 PEs).
PROBE_PES: tuple[int, ...] = (4, 32)
#: Page size used for probing (the paper's primary setting).
PROBE_PAGE_SIZE = 32
#: Cache capacity in elements while probing (the paper's fixed 256).
PROBE_CACHE_ELEMS = 256
#: Remote-read percentages below this are "essentially zero" (matched).
ZERO_PCT = 1e-9
#: Cached remote%% must fall below this fraction of its small-PE value for
#: the "caching becomes nearly perfect as the number of PEs increase"
#: cyclic signature to apply.
CYCLIC_DECAY = 0.45
#: If caching removes less than this fraction of no-cache remote reads at
#: the large PE count, the cache is "ineffective" (random signature).
CACHE_EFFECT_MIN = 0.35
#: Skewed loops keep their cached remote%% below this (paper: "SD access
#: patterns tend to achieve a very low (< 10%) remote access ratio").
SKEWED_MAX_PCT = 12.0
#: A structurally cyclic loop (velocity mismatch or non-unit stride) is
#: confirmed Cyclic only if caching gets it below this — the paper's
#: "caching ... becomes nearly perfect" (§7.1.3).  Structurally cyclic
#: loops whose cached ratio stays high are Random ("a cycle in the
#: access pattern that is too large to fit in the cache", §7.1.4).
CYCLIC_MAX_PCT = 10.0


@dataclass
class DynamicEvidence:
    """Remote-read percentages measured by the probe sweep."""

    pes: tuple[int, ...]
    remote_pct_cache: tuple[float, ...]
    remote_pct_nocache: tuple[float, ...]

    def table(self) -> str:
        rows = ["PEs  remote%(cache)  remote%(no cache)"]
        for pe, with_c, without_c in zip(
            self.pes, self.remote_pct_cache, self.remote_pct_nocache
        ):
            rows.append(f"{pe:>3}  {with_c:>14.2f}  {without_c:>17.2f}")
        return "\n".join(rows)


def classify_dynamic(
    trace: Trace,
    *,
    static_hint: AccessClass | None = None,
    pes: Sequence[int] = PROBE_PES,
    page_size: int = PROBE_PAGE_SIZE,
    cache_elems: int = PROBE_CACHE_ELEMS,
) -> tuple[AccessClass, DynamicEvidence]:
    """Behavioural classification from simulation, per §7.1 signatures.

    ``static_hint`` (the structural verdict of :func:`classify_static`)
    sharpens the Cyclic-vs-Skewed boundary: a velocity-mismatch loop
    whose cache keeps the remote ratio near zero is Cyclic even when
    the probed PE range is too narrow to show the downward trend.
    """
    with_cache: list[float] = []
    without_cache: list[float] = []
    for n_pes in pes:
        cfg = MachineConfig(n_pes=n_pes, page_size=page_size, cache_elems=cache_elems)
        with_cache.append(simulate(trace, cfg).remote_read_pct)
        without_cache.append(simulate(trace, cfg.without_cache()).remote_read_pct)
    evidence = DynamicEvidence(
        pes=tuple(pes),
        remote_pct_cache=tuple(with_cache),
        remote_pct_nocache=tuple(without_cache),
    )
    label = _decide(evidence, static_hint)
    return label, evidence


def _decide(ev: DynamicEvidence, static_hint: AccessClass | None) -> AccessClass:
    small_c, large_c = ev.remote_pct_cache[0], ev.remote_pct_cache[-1]
    large_nc = ev.remote_pct_nocache[-1]
    # Class 1: no remote accesses even without a cache.
    if max(ev.remote_pct_nocache) <= ZERO_PCT:
        return AccessClass.MATCHED
    # Class 3, trend form: with the cache, remote%% collapses as PEs (and
    # hence total cache) grow — "caching ... nearly perfect as the number
    # of PEs increase".
    if small_c > ZERO_PCT and large_c < CYCLIC_DECAY * small_c:
        return AccessClass.CYCLIC
    # Class 3, structural form: velocity mismatch / non-unit stride with
    # a cache that keeps the remote ratio near zero.
    cache_effective = (
        large_nc > 0 and (large_nc - large_c) >= CACHE_EFFECT_MIN * large_nc
    )
    if (
        static_hint is AccessClass.CYCLIC
        and cache_effective
        and large_c <= CYCLIC_MAX_PCT
    ):
        return AccessClass.CYCLIC
    # Class 4: the cache removes little of the remote traffic and the
    # remote ratio stays high.
    if not cache_effective and large_c > SKEWED_MAX_PCT:
        return AccessClass.RANDOM
    # Class 2: low, PE-insensitive cached remote ratio.
    if large_c <= SKEWED_MAX_PCT:
        return AccessClass.SKEWED
    return AccessClass.RANDOM


# --------------------------------------------------------------------------
# combined entry point
# --------------------------------------------------------------------------


@dataclass
class Classification:
    """Final verdict plus both stages' evidence."""

    program: str
    final: AccessClass
    static: StaticEvidence
    dynamic: DynamicEvidence

    def __str__(self) -> str:
        return (
            f"{self.program}: {self.final} "
            f"(static hint: {self.static.hint})"
        )


def classify(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    *,
    pes: Sequence[int] = PROBE_PES,
    page_size: int = PROBE_PAGE_SIZE,
    cache_elems: int = PROBE_CACHE_ELEMS,
) -> Classification:
    """Classify a kernel: static hint, dynamic arbiter (as in the paper)."""
    from ..ir.interp import run_program

    static_evidence = classify_static(program)
    trace = run_program(program, inputs).trace
    final, dynamic_evidence = classify_dynamic(
        trace,
        static_hint=static_evidence.hint,
        pes=pes,
        page_size=page_size,
        cache_elems=cache_elems,
    )
    return Classification(
        program=program.name,
        final=final,
        static=static_evidence,
        dynamic=dynamic_evidence,
    )
