"""Page-to-PE partitioning schemes (§2 and §9).

The paper's automatic data partitioning rule is: "A page *p* is
allocated to the local memory of PE *P* if p = P mod N, where N is the
total number of available PEs" — :class:`ModuloPartition`.  Section 9
observes that "our simple modulo partitioning scheme performs worse for
certain loops than a division scheme" and calls for
programmer/compiler-selectable schemes; :class:`BlockPartition`
implements that division scheme and :class:`BlockCyclicPartition`
generalises both (block size 1 = modulo; block size ≥ n_pages/N =
division).  The ablation benchmark ``bench_ablation_partition`` compares
them per access class.

Every array is paged independently starting at page 0, so page *p* of
*every* array lands on the same PE — this is what makes "matched"
loops entirely local (§7.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BlockCyclicPartition",
    "BlockPartition",
    "ModuloPartition",
    "PartitionScheme",
    "named_scheme",
]


class PartitionScheme:
    """Maps page numbers of an array to owning PEs.

    Implementations must be pure functions of (page, n_pages, n_pes) so
    that every PE can evaluate ownership locally without communication —
    the property the paper's "simple automatic scheme" relies on.
    """

    name: str = "abstract"

    def owner_of(self, page: int, n_pages: int, n_pes: int) -> int:
        """Owning PE of one page."""
        raise NotImplementedError

    def owners_of(
        self, pages: np.ndarray, n_pages: int, n_pes: int
    ) -> np.ndarray:
        """Vectorised :meth:`owner_of` (must agree elementwise)."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Display name including parameters (e.g. "block-cyclic:4")."""
        return self.name

    def pages_owned(self, pe: int, n_pages: int, n_pes: int) -> np.ndarray:
        """All pages owned by one PE (ascending)."""
        pages = np.arange(n_pages, dtype=np.int64)
        owners = self.owners_of(pages, n_pages, n_pes)
        return pages[owners == pe]

    def _validate(self, page: int, n_pages: int, n_pes: int) -> None:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        if not 0 <= page < n_pages:
            raise IndexError(f"page {page} out of range [0, {n_pages})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class ModuloPartition(PartitionScheme):
    """The paper's scheme: page ``p`` lives on PE ``p mod N``."""

    name: str = "modulo"

    def owner_of(self, page: int, n_pages: int, n_pes: int) -> int:
        self._validate(page, n_pages, n_pes)
        return page % n_pes

    def owners_of(
        self, pages: np.ndarray, n_pages: int, n_pes: int
    ) -> np.ndarray:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        return np.asarray(pages, dtype=np.int64) % n_pes


@dataclass(frozen=True, repr=False)
class BlockPartition(PartitionScheme):
    """The "division scheme" (§9): contiguous blocks of pages per PE.

    Pages are split into N nearly equal contiguous ranges; the first
    ``n_pages % N`` PEs receive one extra page, so the imbalance is at
    most one page.
    """

    name: str = "block"

    def owner_of(self, page: int, n_pages: int, n_pes: int) -> int:
        self._validate(page, n_pages, n_pes)
        return int(self.owners_of(np.asarray([page]), n_pages, n_pes)[0])

    def owners_of(
        self, pages: np.ndarray, n_pages: int, n_pes: int
    ) -> np.ndarray:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        pages = np.asarray(pages, dtype=np.int64)
        base, extra = divmod(n_pages, n_pes)
        if base == 0:
            # Fewer pages than PEs: one page per PE, rest idle.
            return pages.copy()
        # First `extra` PEs own (base+1) pages starting at 0.
        split = extra * (base + 1)
        owners = np.where(
            pages < split,
            pages // (base + 1),
            extra + (pages - split) // base,
        )
        return owners.astype(np.int64)


@dataclass(frozen=True, repr=False)
class BlockCyclicPartition(PartitionScheme):
    """Blocks of ``block`` consecutive pages dealt round-robin to PEs.

    ``block=1`` degenerates to :class:`ModuloPartition`.  This is the
    scheme later standardised by High Performance Fortran, included here
    as the natural point on the paper's modulo-vs-division axis.
    """

    block: int = 2
    name: str = "block-cyclic"

    def __post_init__(self) -> None:
        if self.block <= 0:
            raise ValueError("block size must be positive")

    def owner_of(self, page: int, n_pages: int, n_pes: int) -> int:
        self._validate(page, n_pages, n_pes)
        return (page // self.block) % n_pes

    def owners_of(
        self, pages: np.ndarray, n_pages: int, n_pes: int
    ) -> np.ndarray:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        return (np.asarray(pages, dtype=np.int64) // self.block) % n_pes

    @property
    def label(self) -> str:
        return f"{self.name}:{self.block}"

    def __repr__(self) -> str:
        return f"BlockCyclicPartition(block={self.block})"


def named_scheme(name: str) -> PartitionScheme:
    """Look up a scheme by name ("modulo", "block", "block-cyclic:K")."""
    if name == "modulo":
        return ModuloPartition()
    if name == "block":
        return BlockPartition()
    if name.startswith("block-cyclic"):
        _, _, arg = name.partition(":")
        return BlockCyclicPartition(block=int(arg) if arg else 2)
    raise KeyError(f"unknown partition scheme {name!r}")
