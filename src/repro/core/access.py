"""Access categories (§7).

"Accesses to array elements were categorized as follows: write (always
local), local read, cached read, remote read."  These four categories
are the paper's entire measurement vocabulary; everything in the
evaluation is a ratio or per-PE distribution over them.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["AccessKind"]


class AccessKind(IntEnum):
    """The four access categories of §7.

    Values are chosen so they can index compact per-PE counter arrays.
    """

    WRITE = 0        # always local under owner-computes
    LOCAL_READ = 1   # element's page is owned by the executing PE
    CACHED_READ = 2  # remote page already present in the PE's cache
    REMOTE_READ = 3  # page fetched from the owning PE

    @property
    def is_read(self) -> bool:
        return self is not AccessKind.WRITE

    @property
    def crosses_network(self) -> bool:
        """True if the access sends a message to another PE."""
        return self is AccessKind.REMOTE_READ
