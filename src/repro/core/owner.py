"""Owner-computes rule and index screening (§2, §3).

"Control partitioning will be done by assigning to each PE the
responsibility for updating the elements in all the array pages it
contains in its local memory" — each PE executes exactly the statement
instances whose *write target* it owns.  "This is achieved by screening
the array indices so that the right-hand side of the assignment is
evaluated only for a given PE's subranges."

:class:`DataLayout` bundles the page size, PE count and partition
scheme over a set of named arrays and answers ownership queries;
:func:`screen_iterations` performs the index screening for a loop,
returning the iteration values a given PE is responsible for.  The
timed machine model and the examples build on these; the trace-driven
simulator inlines the same arithmetic in vectorised form.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..memory.linearize import linearize, linearize_many
from ..memory.pages import PageTable
from .partition import ModuloPartition, PartitionScheme

__all__ = ["DataLayout", "screen_iterations"]


class DataLayout:
    """Placement of a set of arrays over a machine.

    Parameters mirror the paper's two knobs (page size, number of PEs)
    plus the partition scheme.  Every array is paged independently from
    page 0, so equal indices of different arrays share an owner.
    """

    def __init__(
        self,
        shapes: Mapping[str, Sequence[int]],
        page_size: int,
        n_pes: int,
        scheme: PartitionScheme | None = None,
    ) -> None:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        self.page_size = page_size
        self.n_pes = n_pes
        self.scheme = scheme if scheme is not None else ModuloPartition()
        self.shapes = {name: tuple(shape) for name, shape in shapes.items()}
        self.tables = {
            name: PageTable(int(np.prod(shape)), page_size)
            for name, shape in self.shapes.items()
        }

    # -- ownership queries -----------------------------------------------------
    def owner_of_flat(self, array: str, flat: int) -> int:
        table = self.tables[array]
        return self.scheme.owner_of(table.page_of(flat), table.n_pages, self.n_pes)

    def owner_of(self, array: str, idx: Sequence[int]) -> int:
        return self.owner_of_flat(array, linearize(idx, self.shapes[array]))

    def owners_of_flats(self, array: str, flats: np.ndarray) -> np.ndarray:
        table = self.tables[array]
        return self.scheme.owners_of(
            table.pages_of(flats), table.n_pages, self.n_pes
        )

    def pages_owned(self, array: str, pe: int) -> np.ndarray:
        table = self.tables[array]
        return self.scheme.pages_owned(pe, table.n_pages, self.n_pes)

    def subranges(self, array: str, pe: int) -> list[tuple[int, int]]:
        """Half-open element ranges of ``array`` owned by ``pe``.

        For the paper's four-PE example (three arrays of 100 elements,
        page size 32), PE 3 gets the partial subrange (96, 100).
        """
        table = self.tables[array]
        return [table.page_range(int(p)) for p in self.pages_owned(array, pe)]

    def elements_owned(self, array: str, pe: int) -> int:
        return sum(stop - start for start, stop in self.subranges(array, pe))

    def memory_per_pe(self) -> np.ndarray:
        """Total elements resident on each PE across all arrays."""
        totals = np.zeros(self.n_pes, dtype=np.int64)
        for array in self.shapes:
            for pe in range(self.n_pes):
                totals[pe] += self.elements_owned(array, pe)
        return totals


def screen_iterations(
    layout: DataLayout,
    array: str,
    target_index: Callable[[np.ndarray], Sequence[np.ndarray]],
    iteration_values: np.ndarray,
    pe: int,
) -> np.ndarray:
    """Index screening: which iterations does ``pe`` execute?

    ``target_index`` maps a vector of loop-variable values to the
    multi-index written by each iteration (one array per axis).  The
    returned subset preserves iteration order — "whether only the
    correct indices are generated, or if they all are generated and
    then screened is an implementation detail" (§3); we generate all
    and screen, which is the simpler of the two.
    """
    iteration_values = np.asarray(iteration_values, dtype=np.int64)
    axes = target_index(iteration_values)
    if not isinstance(axes, (tuple, list)):
        axes = (axes,)
    flats = linearize_many([np.asarray(a) for a in axes], layout.shapes[array])
    owners = layout.owners_of_flats(array, flats)
    return iteration_values[owners == pe]
