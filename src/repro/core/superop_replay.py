"""Super-op replay: untimed counters in O(unique behavior).

Replays a :class:`~repro.ir.superops.SuperOpTrace` against one machine
configuration with results bit-identical to
``simulate(sot.expand(), config)`` — without materialising the trips.

The engine walks the trace-order segments.  Residual (flat) segments
are classified vectorised and cache-walked run-length compressed,
exactly like :func:`repro.core.simulator.simulate`, but against
*persistent* per-PE caches so segment boundaries are invisible:
re-probing a just-touched page is a guaranteed hit with an identical
state effect under every policy (LRU's ``move_to_end`` is idempotent;
FIFO/random/direct hits are no-ops; the random policy's RNG is only
consulted on evictions), so splitting a PE's access stream at any
point is exact.

A super-op segment is evaluated *piecewise*: the page number of an
affine access stream ``(f0 + k*d) // page_size`` is a staircase in the
trip counter ``k``, so merging every stream's breakpoints splits the
trips into pieces within which all write owners, all read owners and
all read localities are constant.  Per piece, write and local-read
counters are closed-form (count x piece length, vectorised across
pieces); only pieces with nonlocal reads touch the caches — one probed
trip, then, if every distinct page of the per-trip sequence is still
resident (the steady state: an all-hit trip provably leaves every
policy's state unchanged), the remaining trips collapse into
``(trips-1) x touches`` cached reads.  Bodies whose cache state does
not reach that fixed point fall back to an explicit scalar trip loop —
exactness first.

The probes themselves are decided *columnarly* whenever a closed
form is exact.  Under LRU, with every piece's distinct key set
fitting in the cache, a reduced run (one probe per steady-state
window) misses iff its key is new to the op or at least ``capacity``
distinct keys were touched since its previous run — the classic
stack-distance property, evaluated for every PE's whole op segment in
a handful of array passes (the same batched window-distinct trick as
``vec_simulator._count_misses_vec``).  A *warm* LRU entry cache is
covered too: the live recency stack seeds each first-in-op touch's
distance (the stack is, by the LRU stack property, an exact summary
of pre-op history), so back-to-back ops over the same arrays stay on
the fast path.  Under FIFO the miss mask is the unique fixed point of
the eviction-epoch rule (``vec_simulator._fifo_fixed_point``), run
over the reduced stream per PE from a cold cache, with a per-piece
residency check guarding the all-hit fast-forward (FIFO hits never
refresh admission epochs, so fitting in the cache is not enough).
The exact exit state — last ``capacity`` distinct keys in last-touch
order for LRU, last ``capacity`` admissions in admission order for
FIFO — is rebuilt afterwards, so later segments are none the wiser.
PEs no closed form covers — random/direct policies, warm FIFO
caches, a piece outgrowing the cache, an over-budget or
non-convergent profile — take the per-piece path above instead; see
``docs/fastpaths.md`` for the full decision tree.

Everything capacity- and policy-independent — piece boundaries, owner
classification, the write/local closed-form sums, the reduced runs
and their reuse-distance profile — is compiled once per (op, machine
geometry) into an :class:`_OpProgram` memoised on the trace, so warm
replays of a stored trace (the store's steady state, and what
``tools/superop_bench.py`` measures) reduce to comparing the distance
profile against the cache capacity and a handful of segment sums.

The optional ledger records the per-(PE, array) hit counts and
per-(PE, page) miss counts the timed machine's analytic fast path
(``machine.msim.run_compacted``) turns into latency.
"""

from __future__ import annotations

from typing import MutableMapping

import numpy as np

from ..cache import make_cache
from ..ir.superops import SuperOp, SuperOpTrace
from ..memory.pages import PageTable
from ..obs.profile import phase as _phase
from .access import AccessKind
from .simulator import MachineConfig, SimResult, _owners_by_array, simulate
from .stats import AccessStats
from .vec_simulator import _WINDOW_BUDGET, _fifo_fixed_point

__all__ = ["replay_superops"]

#: Composite (array, page) key packing, as in the flat simulators.
_KEY_SHIFT = 1 << 40


class TimedLedger:
    """Per-(PE, array) hit counts and per-(PE, page) miss counts.

    Filled by :func:`replay_superops` when passed as ``ledger``;
    consumed by the timed machine's analytic fast path.  ``misses``
    maps ``(pe, array_id, page)`` to the number of fetches of that
    page by that PE — miss *events*, each of which the timed machine
    charges one request/reply round trip.
    """

    def __init__(self, n_pes: int, n_arrays: int) -> None:
        self.local = np.zeros((n_pes, n_arrays), dtype=np.int64)
        self.cached = np.zeros((n_pes, n_arrays), dtype=np.int64)
        self.misses: dict[tuple[int, int, int], int] = {}
        self.writes = np.zeros(n_pes, dtype=np.int64)

    def miss(self, pe: int, arr: int, page: int) -> None:
        key = (pe, arr, page)
        self.misses[key] = self.misses.get(key, 0) + 1


class _OpProgram:
    """One super-op compiled against one machine *geometry*.

    Every field is a pure function of (op, page size, PE count,
    partition scheme) — independent of cache policy, capacity, warm
    cache state and the ledger — so repeated replays of one stored
    trace (the store's warm-replay case) skip classification and the
    reuse-distance passes entirely and go straight to the decisions.
    ``dist`` is the op's reuse-distance profile over reduced runs
    (one probe per steady-state window): under LRU a re-touch misses
    iff its distance reaches the cache capacity.
    """

    __slots__ = (
        "n_pieces",
        "piece_len",
        "writes",
        "local",
        "ledger_local",
        "r_exec",
        "r_pages",
        "nl_mask",
        "rpe",
        "rq",
        "ra",
        "rp",
        "touches",
        "pe_ids",
        "pe_starts",
        "base_per_pe",
        "maxdist",
        "cold",
        "re_idx",
        "dist",
        "over_budget",
        "firsts",
        "tail_pos",
        "tail_pe",
        "tail_bounds",
        "resid_pos",
        "resid_end",
    )


class _Replay:
    """One replay pass: persistent per-PE caches + counter state."""

    def __init__(
        self,
        sot: SuperOpTrace,
        config: MachineConfig,
        telemetry: MutableMapping | None,
        ledger: TimedLedger | None,
    ) -> None:
        self.sot = sot
        self.config = config
        self.telemetry = telemetry
        self.ledger = ledger
        self.ps = config.page_size
        self.n_pes = config.n_pes
        self.tables = [PageTable(size, self.ps) for size in sot.array_sizes]
        self.writes = np.zeros(self.n_pes, dtype=np.int64)
        self.local = np.zeros(self.n_pes, dtype=np.int64)
        self.cached = np.zeros(self.n_pes, dtype=np.int64)
        self.remote = np.zeros(self.n_pes, dtype=np.int64)
        self.caches = [
            make_cache(config.cache_policy, config.cache_pages)
            for _ in range(self.n_pes)
        ]
        self.distinct: list[list[np.ndarray]] = [
            [] for _ in range(self.n_pes)
        ]
        self.fallback_pes: set[int] = set()
        self.n_pieces = 0
        self.n_flat_ops = 0
        self.closed_pe_ops = 0
        self.piece_pe_ops = 0

    # -- shared accounting helpers ---------------------------------------------
    def _owners(self, arr_ids: np.ndarray, pages: np.ndarray) -> np.ndarray:
        return _owners_by_array(
            arr_ids, pages, self.tables, self.config.partition, self.n_pes
        )

    def _probe(self, pe: int, arr: int, page: int, touches: int) -> None:
        """One RLE run: ``touches`` consecutive touches of one page."""
        if self.caches[pe].access((arr, page)):
            self.cached[pe] += touches
            if self.ledger is not None:
                self.ledger.cached[pe, arr] += touches
        else:
            self.remote[pe] += 1
            self.cached[pe] += touches - 1
            if self.ledger is not None:
                self.ledger.cached[pe, arr] += touches - 1
                self.ledger.miss(pe, arr, page)

    def _walk_pe(
        self, pe: int, arrs: np.ndarray, pages: np.ndarray, keys: np.ndarray
    ) -> None:
        """Run-length-compressed cache walk of one PE's access slice."""
        change = np.empty(len(keys), dtype=bool)
        change[0] = True
        np.not_equal(keys[1:], keys[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, len(keys)))
        for start, length in zip(starts.tolist(), lengths.tolist()):
            self._probe(pe, int(arrs[start]), int(pages[start]), length)
        self.distinct[pe].append(np.unique(keys))

    # -- flat (residual) segments ----------------------------------------------
    def _flat_columns(
        self,
        w_arr: np.ndarray,
        w_flat: np.ndarray,
        rpi: np.ndarray,
        r_arr: np.ndarray,
        r_flat: np.ndarray,
    ) -> None:
        """Classify + cache-walk explicit flat columns (trace order)."""
        with _phase("classify"):
            exec_pe = self._owners(w_arr, w_flat // self.ps)
            self.writes += np.bincount(exec_pe, minlength=self.n_pes)
            if len(r_arr) == 0:
                return
            r_exec = np.repeat(exec_pe, rpi)
            r_pages = r_flat // self.ps
            r_owner = self._owners(r_arr, r_pages)
            local_mask = r_owner == r_exec
            self.local += np.bincount(
                r_exec[local_mask], minlength=self.n_pes
            )
            if self.ledger is not None:
                np.add.at(
                    self.ledger.local,
                    (r_exec[local_mask], r_arr[local_mask].astype(np.int64)),
                    1,
                )
            nonlocal_idx = np.flatnonzero(~local_mask)
        if nonlocal_idx.size == 0:
            return
        with _phase("cache_sim"):
            nl_exec = r_exec[nonlocal_idx]
            nl_arr = r_arr[nonlocal_idx].astype(np.int64)
            nl_page = r_pages[nonlocal_idx]
            composite = nl_arr * _KEY_SHIFT + nl_page
            order = np.argsort(nl_exec, kind="stable")
            sorted_pes = nl_exec[order]
            bounds = np.flatnonzero(
                np.diff(np.concatenate(([-1], sorted_pes, [-1])))
            )
            for lo, hi in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
                idx = order[lo:hi]
                self._walk_pe(
                    int(sorted_pes[lo]),
                    nl_arr[idx],
                    nl_page[idx],
                    composite[idx],
                )

    def _flat_segment(self, lo: int, hi: int) -> None:
        sot = self.sot
        rlo, rhi = int(sot.f_r_ptr[lo]), int(sot.f_r_ptr[hi])
        self._flat_columns(
            sot.f_w_arr[lo:hi],
            sot.f_w_flat[lo:hi],
            np.diff(sot.f_r_ptr[lo : hi + 1]),
            sot.f_r_arr[rlo:rhi],
            sot.f_r_flat[rlo:rhi],
        )

    def _op_as_flat(self, op: SuperOp) -> None:
        """Degenerate op (pieces ~ trips): expand locally, walk flat."""
        self.n_flat_ops += 1
        m = op.trips
        k = np.arange(m, dtype=np.int64)[:, None]
        self._flat_columns(
            np.tile(op.b_w_arr, m),
            (op.b_w_flat[None, :] + k * op.w_stride[None, :]).ravel(),
            np.tile(np.diff(op.b_r_ptr), m),
            np.tile(op.b_r_arr, m),
            (op.b_r_flat[None, :] + k * op.r_stride[None, :]).ravel(),
        )

    # -- super-op segments ------------------------------------------------------
    @staticmethod
    def _stream_breaks(f0: int, d: int, ps: int, m: int) -> np.ndarray:
        """Trip indices in ``(0, m)`` where ``(f0 + k*d) // ps`` steps."""
        if d == 0 or m <= 1:
            return np.zeros(0, dtype=np.int64)
        first = f0 // ps
        last = (f0 + (m - 1) * d) // ps
        if d > 0:
            pages = np.arange(first + 1, last + 1, dtype=np.int64)
            # ceildiv(P*ps - f0, d): first trip on or past page P.
            return -((f0 - pages * ps) // d)
        pages = np.arange(first - 1, last - 1, -1, dtype=np.int64)
        # First trip at or below page P: f0 + k*d <= (P+1)*ps - 1.
        return -(-(f0 - (pages + 1) * ps + 1) // (-d))

    def _op_breaks(self, op: SuperOp) -> np.ndarray | None:
        """Merged piece boundaries of all streams, or None if the
        piecewise form degenerates (about one piece per trip)."""
        m = op.trips
        ps = self.ps
        # Cheap pre-gate on the breakpoint count before generating any.
        est = 0
        for f0, d in zip(op.b_w_flat.tolist(), op.w_stride.tolist()):
            est += abs(d) * (m - 1) // ps + 1 if d else 0
        for f0, d in zip(op.b_r_flat.tolist(), op.r_stride.tolist()):
            est += abs(d) * (m - 1) // ps + 1 if d else 0
        if est >= m:
            return None
        parts = [np.array([0, m], dtype=np.int64)]
        for f0, d in zip(op.b_w_flat.tolist(), op.w_stride.tolist()):
            parts.append(self._stream_breaks(f0, d, ps, m))
        for f0, d in zip(op.b_r_flat.tolist(), op.r_stride.tolist()):
            parts.append(self._stream_breaks(f0, d, ps, m))
        boundaries = np.unique(np.concatenate(parts))
        if len(boundaries) - 1 >= m:
            return None
        return boundaries

    def _op_segment(self, op: SuperOp) -> None:
        prog = self._op_program(op)
        if prog is None:
            self._op_as_flat(op)
            return
        self.n_pieces += prog.n_pieces
        self.writes += prog.writes
        self.local += prog.local
        if self.ledger is not None:
            self.ledger.local += prog.ledger_local
        if prog.rpe is None:  # the op has no nonlocal reads at all
            return
        with _phase("cache_sim"):
            slow_pes = self._op_decide(prog)
            self.closed_pe_ops += prog.pe_ids.size - len(slow_pes)
            self.piece_pe_ops += len(slow_pes)
            if slow_pes:
                slow = prog.nl_mask & np.isin(
                    prog.r_exec, sorted(slow_pes)
                )
                for q in np.flatnonzero(slow.any(axis=1)).tolist():
                    self._op_piece(
                        op,
                        int(prog.piece_len[q]),
                        np.flatnonzero(slow[q]),
                        prog.r_exec[q],
                        prog.r_pages[q],
                    )

    def _op_program(self, op: SuperOp) -> "_OpProgram | None":
        """The op compiled against this machine geometry, memoised on
        the trace: warm replays of one stored trace compile once.
        ``None`` marks an op whose piecewise form degenerates."""
        memo = self.sot.__dict__.get("_op_programs")
        if memo is None:
            memo = {}
            object.__setattr__(self.sot, "_op_programs", memo)
        key = (
            id(op),
            self.ps,
            self.n_pes,
            type(self.config.partition).__name__,
            self.config.partition.label,
        )
        if key not in memo:
            with _phase("classify"):
                memo[key] = self._compile_op(op)
        return memo[key]

    def _compile_op(self, op: SuperOp) -> "_OpProgram | None":
        boundaries = self._op_breaks(op)
        if boundaries is None:
            return None
        prog = _OpProgram()
        piece_len = np.diff(boundaries)
        rep = boundaries[:-1]  # representative trip per piece
        n_pieces = len(rep)
        p = op.body_len
        prog.n_pieces = n_pieces
        prog.piece_len = piece_len
        prog.rpe = None
        w_pages = (
            op.b_w_flat[None, :] + rep[:, None] * op.w_stride[None, :]
        ) // self.ps
        exec_pe = self._owners(
            np.tile(op.b_w_arr.astype(np.int64), n_pieces),
            w_pages.ravel(),
        ).reshape(n_pieces, p)
        prog.writes = np.zeros(self.n_pes, dtype=np.int64)
        np.add.at(
            prog.writes, exec_pe.ravel(), np.repeat(piece_len, p)
        )
        prog.local = np.zeros(self.n_pes, dtype=np.int64)
        prog.ledger_local = np.zeros(
            (self.n_pes, len(self.sot.array_names)), dtype=np.int64
        )
        n_reads = op.n_body_reads
        if n_reads == 0:
            return prog
        r_pages = (
            op.b_r_flat[None, :] + rep[:, None] * op.r_stride[None, :]
        ) // self.ps
        owner = self._owners(
            np.tile(op.b_r_arr.astype(np.int64), n_pieces),
            r_pages.ravel(),
        ).reshape(n_pieces, n_reads)
        # Body row of each read; its executing PE per piece.
        row = (
            np.searchsorted(
                op.b_r_ptr,
                np.arange(n_reads, dtype=np.int64),
                side="right",
            )
            - 1
        )
        r_exec = exec_pe[:, row]
        local_mask = owner == r_exec
        weights = np.broadcast_to(piece_len[:, None], local_mask.shape)
        np.add.at(prog.local, r_exec[local_mask], weights[local_mask])
        arr_mat = np.broadcast_to(
            op.b_r_arr.astype(np.int64)[None, :], local_mask.shape
        )
        np.add.at(
            prog.ledger_local,
            (r_exec[local_mask], arr_mat[local_mask]),
            weights[local_mask],
        )
        prog.r_exec = r_exec
        prog.r_pages = r_pages
        prog.nl_mask = ~local_mask
        if not prog.nl_mask.any():
            return prog
        # -- reduced runs: one probe per steady-state window -----------
        # PE-major entry order (stable: piece-then-touch order kept),
        # RLE'd but never merged across piece or PE bounds.
        q_idx, col = np.nonzero(prog.nl_mask)
        pes = r_exec[prog.nl_mask]
        order = np.argsort(pes, kind="stable")
        pe_s = pes[order]
        q_s = q_idx[order]
        a_s = op.b_r_arr.astype(np.int64)[col][order]
        g_s = r_pages[prog.nl_mask][order]
        k_s = a_s * _KEY_SHIFT + g_s
        n = len(order)
        brk = np.empty(n, dtype=bool)
        brk[0] = True
        brk[1:] = (
            (k_s[1:] != k_s[:-1])
            | (q_s[1:] != q_s[:-1])
            | (pe_s[1:] != pe_s[:-1])
        )
        starts = np.flatnonzero(brk)
        t_len = np.diff(np.append(starts, n))  # touches per trip
        rk = k_s[starts]
        rq = q_s[starts]
        rpe = pe_s[starts]
        prog.rpe = rpe
        prog.rq = rq
        prog.ra = a_s[starts]
        prog.rp = g_s[starts]
        # Each run's probe plus its (trips - 1) all-hit fast-forward.
        prog.touches = t_len * piece_len[rq]
        n_runs = len(rk)
        seg = np.flatnonzero(np.diff(np.concatenate(([-1], rpe, [-1]))))
        prog.pe_starts = seg[:-1]
        prog.pe_ids = rpe[prog.pe_starts]
        prog.base_per_pe = np.add.reduceat(prog.touches, prog.pe_starts)
        # Largest per-piece distinct key count of each PE: the all-hit
        # fast-forward is exact for LRU iff it fits in the cache.
        by_piece = np.lexsort((rk, rq, rpe))
        k2, q2, pe2 = rk[by_piece], rq[by_piece], rpe[by_piece]
        group = np.empty(n_runs, dtype=bool)
        group[0] = True
        group[1:] = (q2[1:] != q2[:-1]) | (pe2[1:] != pe2[:-1])
        fresh = group.copy()
        fresh[1:] |= k2[1:] != k2[:-1]
        gid = np.cumsum(group) - 1
        prog.maxdist = np.zeros(self.n_pes, dtype=np.int64)
        np.maximum.at(
            prog.maxdist,
            pe2[np.flatnonzero(group)],
            np.bincount(gid[fresh]),
        )
        # Previous run of the same (PE, key) -> cold mask + the reuse-
        # distance profile.  Runs between two same-PE runs all belong
        # to that PE's contiguous block, so distances never mix PEs.
        by_key = np.lexsort((rk, rpe))
        sk, spe = rk[by_key], rpe[by_key]
        dup = np.empty(n_runs, dtype=bool)
        dup[0] = False
        dup[1:] = (sk[1:] == sk[:-1]) & (spe[1:] == spe[:-1])
        prev = np.full(n_runs, -1, dtype=np.int64)
        di = np.flatnonzero(dup)
        prev[by_key[di]] = by_key[di - 1]
        prog.cold = prev < 0
        prog.re_idx = np.flatnonzero(~prog.cold)
        prog.dist = np.zeros(prog.re_idx.size, dtype=np.int64)
        prog.over_budget = False
        if prog.re_idx.size:
            w_start = prev[prog.re_idx] + 1
            spans = prog.re_idx - w_start
            total = int(spans.sum())
            if total > max(_WINDOW_BUDGET, 8 * n_runs):
                prog.over_budget = True
            elif total:
                # Batched distinct-per-window, as in the vec engine.
                offsets = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(spans) - spans, spans
                )
                flat = rk[np.repeat(w_start, spans) + offsets]
                win = np.repeat(
                    np.arange(prog.re_idx.size, dtype=np.int64), spans
                )
                o = np.lexsort((flat, win))
                kf, wf = flat[o], win[o]
                first = np.empty(total, dtype=bool)
                first[0] = True
                first[1:] = (kf[1:] != kf[:-1]) | (wf[1:] != wf[:-1])
                prog.dist = np.bincount(
                    wf[first], minlength=prog.re_idx.size
                )
        # Distinct fetched keys per PE (= the cold runs, PE-major).
        firsts = np.flatnonzero(~dup)
        fpe, fk = spe[firsts], sk[firsts]
        bounds = np.flatnonzero(
            np.diff(np.concatenate(([-1], fpe, [-1])))
        )
        prog.firsts = [
            (int(fpe[lo]), fk[lo:hi])
            for lo, hi in zip(bounds[:-1].tolist(), bounds[1:].tolist())
        ]
        # Last run of each (PE, key), PE-major then chronological: the
        # final LRU state is the tail `capacity` of each PE segment.
        last = np.empty(n_runs, dtype=bool)
        last[-1] = True
        last[:-1] = (sk[1:] != sk[:-1]) | (spe[1:] != spe[:-1])
        last_pos = by_key[last]
        tail_order = np.lexsort((last_pos, rpe[last_pos]))
        prog.tail_pos = last_pos[tail_order]
        prog.tail_pe = rpe[prog.tail_pos]
        prog.tail_bounds = np.flatnonzero(
            np.diff(np.concatenate(([-1], prog.tail_pe, [-1])))
        )
        # FIFO residency-check sites.  The all-hit fast-forward of a
        # multi-trip piece is exact only if its probe block ends with
        # every one of the piece's keys still resident — which under
        # FIFO (hits never refresh admission epochs) is *not* implied
        # by fitting in the cache.  Record, for each (PE, piece, key)
        # group of every multi-trip piece, the key's last in-block run
        # and the block's final run; the replay-time check compares
        # their fill epochs against the capacity.
        glast = np.empty(n_runs, dtype=bool)
        glast[-1] = True
        glast[:-1] = fresh[1:]
        cand = by_piece[glast]
        cand = cand[piece_len[rq[cand]] > 1]
        blk = np.empty(n_runs, dtype=bool)
        blk[0] = True
        blk[1:] = (rq[1:] != rq[:-1]) | (rpe[1:] != rpe[:-1])
        blk_ends = np.append(np.flatnonzero(blk)[1:], n_runs) - 1
        prog.resid_pos = cand
        prog.resid_end = blk_ends[(np.cumsum(blk) - 1)[cand]]
        return prog

    def _op_decide(self, prog: "_OpProgram") -> set[int]:
        """Apply one compiled op's cache decisions columnarly.

        Under LRU a reduced run misses iff its key is cold or its
        reuse distance reaches the capacity; a *warm* entry cache is
        covered by seeding each cold run's distance against the live
        recency stack (:meth:`_seeded_cold`).  Under FIFO the miss
        mask is the unique fixed point of the eviction-epoch rule
        (:func:`~repro.core.vec_simulator._fifo_fixed_point`), from a
        cold cache, with a residency check guarding each multi-trip
        piece's all-hit fast-forward.  Returns the PEs the closed
        forms do not cover (random/direct policies, warm FIFO caches,
        an oversized piece, an over-budget or non-convergent
        profile); the caller replays those per piece.  The exact exit
        cache state is rebuilt per policy (:meth:`_rebuild_exit`), so
        later segments are none the wiser.
        """
        capacity = self.config.cache_pages
        policy = self.config.cache_policy
        all_pes = set(prog.pe_ids.tolist())
        if capacity == 0:
            return all_pes
        if policy == "lru":
            decided = self._decide_lru(prog, capacity, all_pes)
        elif policy == "fifo":
            decided = self._decide_fifo(prog, capacity, all_pes)
        else:
            decided = None
        if decided is None:
            return all_pes
        miss, slow = decided
        if slow == all_pes:
            return slow
        if not slow:
            kept = None
            miss_per_pe = np.add.reduceat(
                miss.astype(np.int64), prog.pe_starts
            )
            self.cached[prog.pe_ids] += prog.base_per_pe - miss_per_pe
            self.remote[prog.pe_ids] += miss_per_pe
        else:
            kept = ~np.isin(prog.rpe, sorted(slow))
            ki = np.flatnonzero(kept)
            mi = np.flatnonzero(miss & kept)
            np.add.at(self.cached, prog.rpe[ki], prog.touches[ki])
            np.subtract.at(self.cached, prog.rpe[mi], 1)
            np.add.at(self.remote, prog.rpe[mi], 1)
        if self.ledger is not None:
            if kept is None:
                np.add.at(
                    self.ledger.cached, (prog.rpe, prog.ra), prog.touches
                )
                mi = np.flatnonzero(miss)
            else:
                ki = np.flatnonzero(kept)
                np.add.at(
                    self.ledger.cached,
                    (prog.rpe[ki], prog.ra[ki]),
                    prog.touches[ki],
                )
                mi = np.flatnonzero(miss & kept)
            np.subtract.at(
                self.ledger.cached, (prog.rpe[mi], prog.ra[mi]), 1
            )
            for i in mi.tolist():
                self.ledger.miss(
                    int(prog.rpe[i]), int(prog.ra[i]), int(prog.rp[i])
                )
        for pe, fk in prog.firsts:
            if pe not in slow:
                self.distinct[pe].append(fk)
        self._rebuild_exit(prog, miss, slow, capacity, policy)
        return slow

    def _decide_lru(
        self, prog: "_OpProgram", capacity: int, all_pes: set[int]
    ) -> tuple[np.ndarray, set[int]] | None:
        """LRU miss mask + uncovered PEs, or None to uncover the op.

        Cold caches: the compiled reuse-distance profile decides every
        run directly.  Warm caches: exact, provided the seeded cold
        decisions stay within budget — the in-op repeat distances are
        unaffected by pre-op history (their windows lie entirely
        inside the op), so only the cold runs are rescored.
        """
        if prog.over_budget:
            return None
        slow = {pe for pe in all_pes if prog.maxdist[pe] > capacity}
        miss = prog.cold.copy()
        if prog.re_idx.size:
            miss[prog.re_idx[prog.dist >= capacity]] = True
        pe_ends = np.append(prog.pe_starts[1:], prog.rpe.size)
        for pos, pe in enumerate(prog.pe_ids.tolist()):
            if pe in slow or not len(self.caches[pe]):
                continue
            lo, hi = int(prog.pe_starts[pos]), int(pe_ends[pos])
            seeded = self._seeded_cold(pe, lo, hi, prog, capacity)
            if seeded is None:
                slow.add(pe)
                continue
            miss[lo + np.flatnonzero(prog.cold[lo:hi])] = seeded
        return miss, slow

    def _seeded_cold(
        self, pe: int, lo: int, hi: int, prog: "_OpProgram", capacity: int
    ) -> np.ndarray | None:
        """Per-cold-run miss decisions for one warm LRU PE, or None.

        The LRU stack property makes the entry cache a perfect
        summary of pre-op history: a key resident at depth ``d`` from
        the MRU end was last touched exactly ``d`` distinct keys ago
        (anything touched after it that is *not* above it would have
        been evicted first), and an absent key's reuse distance
        already reached the capacity at its eviction and only grows.
        So each cold run of an absent key is an exact miss, and each
        cold run of a resident key scores an exact distance over the
        *mini-stream* ``[entry stack, LRU->MRU] + [this PE's reduced
        runs, chronological]`` — the window from the key's stack slot
        to the run covers precisely the stack keys above it plus the
        op keys touched before it, and the batched distinct count
        handles their overlap.  Returns None when the windows blow
        the budget (the caller replays the PE per piece instead).
        """
        stack_pairs = self.caches[pe].resident_keys()  # LRU -> MRU
        s = len(stack_pairs)
        stack = np.array(
            [a * _KEY_SHIFT + g for a, g in stack_pairs], dtype=np.int64
        )
        seg_keys = prog.ra[lo:hi] * _KEY_SHIFT + prog.rp[lo:hi]
        ci = np.flatnonzero(prog.cold[lo:hi])
        cold_keys = seg_keys[ci]
        sorter = np.argsort(stack)
        ssorted = stack[sorter]
        loc = np.minimum(np.searchsorted(ssorted, cold_keys), s - 1)
        present = ssorted[loc] == cold_keys
        miss = ~present
        start = np.where(present, sorter[loc] + 1, 0)
        end = s + ci  # mini-stream position of the cold run itself
        span = end - start
        undecided = np.flatnonzero(present & (span >= capacity))
        if undecided.size:
            spans = span[undecided]
            total = int(spans.sum())
            if total > max(_WINDOW_BUDGET, 8 * (s + hi - lo)):
                return None
            ministream = np.concatenate([stack, seg_keys])
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(spans) - spans, spans
            )
            flat = ministream[np.repeat(start[undecided], spans) + offsets]
            win = np.repeat(
                np.arange(undecided.size, dtype=np.int64), spans
            )
            o = np.lexsort((flat, win))
            kf, wf = flat[o], win[o]
            first = np.empty(total, dtype=bool)
            first[0] = True
            first[1:] = (kf[1:] != kf[:-1]) | (wf[1:] != wf[:-1])
            distinct = np.bincount(wf[first], minlength=undecided.size)
            miss[undecided[distinct >= capacity]] = True
        return miss

    def _decide_fifo(
        self, prog: "_OpProgram", capacity: int, all_pes: set[int]
    ) -> tuple[np.ndarray, set[int]] | None:
        """FIFO miss mask + uncovered PEs, or None to uncover the op.

        Runs the eviction-epoch fixed point over the op's reduced-run
        stream, segmented per PE (the per-PE caches are independent).
        Warm PEs are uncovered — a FIFO admission queue's epochs are
        not reconstructible from the resident set alone.  The
        residency check uncovers a PE the moment any multi-trip piece
        would fast-forward with an already-evicted key (``E - I > C``
        for the block-end fill count ``E`` and the key's inclusive
        admission epoch ``I`` at its last in-block run); decisions
        past a PE's first violation are unreliable, which is fine
        because that whole PE replays per piece — and up to the first
        violation the fixed point equals the true simulation, so the
        first violation is always detected.
        """
        slow = {pe for pe in all_pes if len(self.caches[pe])}
        if slow == all_pes:
            return None
        keys = prog.ra * _KEY_SHIFT + prog.rp
        solved = _fifo_fixed_point(keys, capacity, seg=prog.rpe)
        if solved is None:
            return None
        miss, admit = solved
        if prog.resid_pos.size:
            fills = np.cumsum(miss) - miss
            end_fills = fills[prog.resid_end] + miss[prog.resid_end]
            viol = end_fills - admit[prog.resid_pos] > capacity
            if viol.any():
                slow |= set(prog.rpe[prog.resid_pos[viol]].tolist())
        return miss, slow

    def _rebuild_exit(
        self,
        prog: "_OpProgram",
        miss: np.ndarray,
        slow: set[int],
        capacity: int,
        policy: str,
    ) -> None:
        """Rebuild each covered PE's exact exit cache state.

        LRU: the final stack is the last ``capacity`` distinct keys
        in last-touch order — preceded, for a warm entry cache, by
        its *untouched* resident keys in entry order (untouched keys
        keep their relative recency and sit below everything the op
        touched; re-accessing the whole virtual stack bottom-to-top
        lets the cache itself evict whatever fell off).  FIFO: the
        queue is the last ``capacity`` admissions in admission order,
        i.e. the tail of the PE's miss sequence — keys within any
        ``capacity`` consecutive admissions are distinct (a key must
        be evicted, ``capacity`` fills after admission, before it can
        be re-admitted), so replaying them into the cold cache is
        exact.
        """
        if policy == "fifo":
            pe_ends = np.append(prog.pe_starts[1:], prog.rpe.size)
            for pos, pe in enumerate(prog.pe_ids.tolist()):
                if pe in slow:
                    continue
                lo, hi = int(prog.pe_starts[pos]), int(pe_ends[pos])
                mi = lo + np.flatnonzero(miss[lo:hi])
                cache = self.caches[pe]  # cold: warm FIFO is uncovered
                for i in mi[-capacity:].tolist():
                    cache.access((int(prog.ra[i]), int(prog.rp[i])))
            return
        first_keys = dict(prog.firsts)
        tb = prog.tail_bounds
        for lo, hi in zip(tb[:-1].tolist(), tb[1:].tolist()):
            pe = int(prog.tail_pe[lo])
            if pe in slow:
                continue
            cache = self.caches[pe]
            if len(cache):
                touched = set(first_keys[pe].tolist())
                entry = [
                    pair
                    for pair in cache.resident_keys()
                    if pair[0] * _KEY_SHIFT + pair[1] not in touched
                ]
                cache.clear()
                for pair in entry:
                    cache.access(pair)
            for i in prog.tail_pos[max(lo, hi - capacity) : hi].tolist():
                cache.access((int(prog.ra[i]), int(prog.rp[i])))

    def _op_piece(
        self,
        op: SuperOp,
        trips: int,
        nonlocal_ts: np.ndarray,
        r_exec: np.ndarray,
        r_pages: np.ndarray,
    ) -> None:
        """Cache-walk one piece: per-trip sequences are constant, so
        probe one trip, then fast-forward the steady state (or fall
        back to the scalar trip loop when there is none)."""
        pes = r_exec[nonlocal_ts]
        arrs = op.b_r_arr[nonlocal_ts].astype(np.int64)
        pages = r_pages[nonlocal_ts]
        keys = arrs * _KEY_SHIFT + pages
        for pe in np.unique(pes).tolist():
            sel = pes == pe
            seq_arrs = arrs[sel]
            seq_pages = pages[sel]
            seq_keys = keys[sel]
            touches = len(seq_keys)
            self.distinct[pe].append(np.unique(seq_keys))
            self._walk_pe_trip(pe, seq_arrs, seq_pages, seq_keys)
            if trips == 1:
                continue
            cache = self.caches[pe]
            resident = all(
                cache.contains((int(a), int(g)))
                for a, g in zip(*_unique_pairs(seq_arrs, seq_pages))
            )
            if resident:
                # Steady state: every further trip is all hits, and an
                # all-hit replay of the same sequence leaves the cache
                # state of every policy unchanged.
                extra = (trips - 1) * touches
                self.cached[pe] += extra
                if self.ledger is not None:
                    counts = np.bincount(
                        seq_arrs, minlength=len(self.sot.array_names)
                    )
                    self.ledger.cached[pe] += (trips - 1) * counts
            else:
                # No fixed point (the sequence thrashes its own pages):
                # replay the remaining trips explicitly.
                self.fallback_pes.add(pe)
                for _ in range(trips - 1):
                    self._walk_pe_trip(pe, seq_arrs, seq_pages, seq_keys)

    def _walk_pe_trip(
        self, pe: int, arrs: np.ndarray, pages: np.ndarray, keys: np.ndarray
    ) -> None:
        """One trip of one PE's nonlocal sequence (RLE within the trip;
        the distinct-key set is collected by the caller)."""
        change = np.empty(len(keys), dtype=bool)
        change[0] = True
        np.not_equal(keys[1:], keys[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, len(keys)))
        for start, length in zip(starts.tolist(), lengths.tolist()):
            self._probe(pe, int(arrs[start]), int(pages[start]), length)

    # -- driver -----------------------------------------------------------------
    def run(self) -> SimResult:
        for seg in self.sot.segments():
            if seg[0] == "flat":
                self._flat_segment(seg[1], seg[2])
            else:
                self._op_segment(seg[1])
        stats = AccessStats(self.n_pes, self.sot.array_names)
        stats.add_vector(AccessKind.WRITE, self.writes)
        stats.add_vector(AccessKind.LOCAL_READ, self.local)
        stats.add_vector(AccessKind.CACHED_READ, self.cached)
        stats.add_vector(AccessKind.REMOTE_READ, self.remote)
        distinct = np.zeros(self.n_pes, dtype=np.int64)
        for pe in range(self.n_pes):
            parts = self.distinct[pe]
            if not parts:
                continue
            if len(parts) == 1:
                # Every appended chunk is already deduplicated.
                distinct[pe] = len(parts[0])
            else:
                distinct[pe] = len(np.unique(np.concatenate(parts)))
        if self.ledger is not None:
            self.ledger.writes += self.writes
        if self.telemetry is not None:
            self.telemetry["mode"] = "superop"
            self.telemetry["superop_ops"] = len(self.sot.ops)
            self.telemetry["superop_pieces"] = self.n_pieces
            self.telemetry["superop_flat_ops"] = self.n_flat_ops
            self.telemetry["superop_closed_pes"] = self.closed_pe_ops
            self.telemetry["superop_piece_pes"] = self.piece_pe_ops
            self.telemetry["fallback_pes"] = len(self.fallback_pes)
        return SimResult(
            self.config, stats, self.remote.copy(), distinct
        )


def _unique_pairs(
    arrs: np.ndarray, pages: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct (array, page) pairs of one sequence."""
    keys, idx = np.unique(arrs * _KEY_SHIFT + pages, return_index=True)
    return arrs[idx], pages[idx]


def replay_superops(
    sot: SuperOpTrace,
    config: MachineConfig,
    telemetry: MutableMapping | None = None,
    ledger: TimedLedger | None = None,
) -> SimResult:
    """Counters of ``simulate(sot.expand(), config)``, bit-identical,
    in O(unique behavior) instead of O(trace length).

    Falls back to the flat simulator wholesale for the configurations
    whose accounting is not per-access separable here: cacheless
    machines (distinct-page bookkeeping would dominate) and subrange
    reductions (the combine phase re-places instances globally).  The
    piecewise engine handles everything else; see the module docstring
    for the exactness argument.
    """
    if not config.has_cache or (
        config.reduction_strategy == "subrange" and sot.has_reductions
    ):
        if telemetry is not None:
            telemetry["mode"] = "superop-expanded"
            telemetry["fallback_pes"] = config.n_pes
        return simulate(sot.expand(), config)
    return _Replay(sot, config, telemetry, ledger).run()
