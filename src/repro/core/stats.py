"""Simulation counters and load-balance metrics (§7.1, §7.2).

:class:`AccessStats` accumulates the four access categories per PE and
derives the paper's headline measure — "% of Reads Remote" — plus the
load-balance view of Figure 5 (remote and local reads per PE).
:class:`LoadBalance` condenses a per-PE series into the summary numbers
quoted in §7.2 ("each of the sixty-four PEs performs a comparable
number of remote reads and local reads").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .access import AccessKind

__all__ = ["AccessStats", "LoadBalance"]


class AccessStats:
    """Per-PE counters over the four access categories.

    Counters are a dense ``int64[n_pes, 4]`` matrix indexed by
    :class:`~repro.core.access.AccessKind`, with optional per-array and
    per-statement breakdowns for diagnostics.
    """

    def __init__(self, n_pes: int, array_names: tuple[str, ...] = ()) -> None:
        if n_pes <= 0:
            raise ValueError("need at least one PE")
        self.n_pes = n_pes
        self.array_names = array_names
        self.counts = np.zeros((n_pes, len(AccessKind)), dtype=np.int64)
        # per (array, kind) totals, machine-wide
        self.by_array = np.zeros(
            (len(array_names), len(AccessKind)), dtype=np.int64
        )

    # -- accumulation ----------------------------------------------------------
    def add(self, pe: int, kind: AccessKind, n: int = 1, array_id: int = -1) -> None:
        self.counts[pe, kind] += n
        if array_id >= 0 and len(self.array_names):
            self.by_array[array_id, kind] += n

    def add_vector(self, kind: AccessKind, per_pe: np.ndarray) -> None:
        """Add a whole per-PE count vector for one category."""
        if per_pe.shape != (self.n_pes,):
            raise ValueError("per-PE vector shape mismatch")
        self.counts[:, kind] += per_pe

    def merge(self, other: "AccessStats") -> None:
        if other.n_pes != self.n_pes:
            raise ValueError("cannot merge stats with different PE counts")
        self.counts += other.counts
        if self.array_names == other.array_names:
            self.by_array += other.by_array

    # -- totals ------------------------------------------------------------------
    def total(self, kind: AccessKind) -> int:
        return int(self.counts[:, kind].sum())

    @property
    def writes(self) -> int:
        return self.total(AccessKind.WRITE)

    @property
    def local_reads(self) -> int:
        return self.total(AccessKind.LOCAL_READ)

    @property
    def cached_reads(self) -> int:
        return self.total(AccessKind.CACHED_READ)

    @property
    def remote_reads(self) -> int:
        return self.total(AccessKind.REMOTE_READ)

    @property
    def total_reads(self) -> int:
        return self.local_reads + self.cached_reads + self.remote_reads

    @property
    def remote_read_pct(self) -> float:
        """The paper's "% of Reads Remote" (0 when there are no reads)."""
        reads = self.total_reads
        return 100.0 * self.remote_reads / reads if reads else 0.0

    @property
    def cached_read_pct(self) -> float:
        reads = self.total_reads
        return 100.0 * self.cached_reads / reads if reads else 0.0

    # -- per-PE views --------------------------------------------------------------
    def per_pe(self, kind: AccessKind) -> np.ndarray:
        return self.counts[:, kind].copy()

    def reads_per_pe(self) -> np.ndarray:
        return (
            self.counts[:, AccessKind.LOCAL_READ]
            + self.counts[:, AccessKind.CACHED_READ]
            + self.counts[:, AccessKind.REMOTE_READ]
        )

    def load_balance(self, kind: AccessKind) -> "LoadBalance":
        return LoadBalance.from_series(self.per_pe(kind))

    def summary(self) -> dict[str, float]:
        return {
            "writes": float(self.writes),
            "local_reads": float(self.local_reads),
            "cached_reads": float(self.cached_reads),
            "remote_reads": float(self.remote_reads),
            "remote_read_pct": self.remote_read_pct,
            "cached_read_pct": self.cached_read_pct,
        }

    def __repr__(self) -> str:
        return (
            f"AccessStats(pes={self.n_pes}, writes={self.writes}, "
            f"local={self.local_reads}, cached={self.cached_reads}, "
            f"remote={self.remote_reads}, "
            f"remote%={self.remote_read_pct:.2f})"
        )


@dataclass(frozen=True)
class LoadBalance:
    """Summary statistics of a per-PE count series (Figure 5, §7.2)."""

    mean: float
    std: float
    minimum: int
    maximum: int
    series: tuple[int, ...] = field(repr=False, default=())

    @staticmethod
    def from_series(series: np.ndarray) -> "LoadBalance":
        series = np.asarray(series, dtype=np.int64)
        if series.size == 0:
            raise ValueError("empty per-PE series")
        return LoadBalance(
            mean=float(series.mean()),
            std=float(series.std()),
            minimum=int(series.min()),
            maximum=int(series.max()),
            series=tuple(int(x) for x in series),
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (0 = perfectly balanced)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def jain_index(self) -> float:
        """Jain's fairness index in (0, 1]; 1 = perfectly balanced."""
        arr = np.asarray(self.series, dtype=np.float64)
        denom = len(arr) * float((arr * arr).sum())
        if denom == 0.0:
            return 1.0
        return float(arr.sum()) ** 2 / denom

    @property
    def spread(self) -> int:
        return self.maximum - self.minimum
