"""Columnar (vectorised) replay of the untimed simulation.

:func:`simulate_vec` produces **bit-identical** counters to
:func:`repro.core.simulator.simulate` — same :class:`AccessStats`,
same per-PE fetch vectors — but replaces the scalar per-run Python
cache walk with whole-column numpy decisions wherever the replacement
policy admits a closed form:

* **no cache** — classification alone decides everything; fully
  vectorised (the scalar engine already is, modulo the per-PE
  distinct-page loop).
* **no evictions** (distinct pages ≤ capacity) — every key misses
  exactly once, every repeat hits.  Exact for ``lru``, ``fifo`` and
  ``random`` alike: with no evictions the three policies are
  indistinguishable and the random policy's RNG is never consulted.
* **direct** — one slot per key hash at any capacity: a run hits iff
  the previous run hashing to its slot carried the same key, which a
  stable sort by slot answers for every run at once.
* **lru** — a stack algorithm, so the Mattson stack-distance property
  (see :mod:`repro.core.reuse`) decides each run exactly: a re-touch
  hits iff fewer than ``capacity`` distinct keys intervened.  Runs
  whose intervening window is shorter than the capacity are guaranteed
  hits; the remaining few are decided by an exact per-window distinct
  count, under a total-window budget.

Order-dependent spans fall back to the *scalar* engine's own
machinery so divergence is impossible by construction: FIFO/random
eviction sequences replay through :func:`repro.cache.make_cache`
run-by-run, and the subrange-reduction combine is charged by the
shared :func:`repro.core.simulator._charge_subrange_combine`.  The
fidelity contract is enforced generatively by
``tests/test_vec_fidelity.py``.

Profiling phases mirror the scalar engine's (``classify`` /
``cache_sim`` / ``reduction``) as ``classify_vec`` / ``cache_sim_vec``
plus ``fallback_scalar`` for the delegated spans, so
``tools/replay_profile.py`` can attribute replay time to the
vectorised and scalar halves separately.
"""

from __future__ import annotations

import numpy as np

from ..cache import POLICIES, make_cache
from ..ir.trace import Trace
from ..memory.pages import PageTable
from ..obs.profile import phase as _phase
from .access import AccessKind
from .simulator import (
    MachineConfig,
    SimResult,
    _charge_subrange_combine,
    _owners_by_array,
    subrange_placement,
)
from .stats import AccessStats

__all__ = ["simulate_vec"]

#: Ceiling on the summed undecided-window lengths of one PE's LRU walk
#: before the exact per-window distinct counts would cost more than the
#: scalar replay they replace; past it the PE falls back wholesale.
_WINDOW_BUDGET = 1 << 16


def _segments(sorted_pes: np.ndarray):
    """Yield ``(pe, start, end)`` for each PE's contiguous slice."""
    boundaries = np.flatnonzero(sorted_pes[1:] != sorted_pes[:-1]) + 1
    edges = np.concatenate(
        ([0], boundaries, [sorted_pes.size])
    )
    for start, end in zip(edges[:-1].tolist(), edges[1:].tolist()):
        yield int(sorted_pes[start]), start, end


def _count_misses_vec(
    run_keys: np.ndarray,
    run_arrs: np.ndarray,
    run_pages: np.ndarray,
    policy: str,
    capacity: int,
) -> tuple[int | None, int]:
    """``(miss count or None, distinct keys)`` for one PE's runs.

    A None miss count means the sequence is order-dependent under this
    policy (or too expensive to decide columnarly) and must replay
    through the scalar cache.  The distinct-key count is exact either
    way — it is a by-product of the same sort the decision needs.
    """
    n_runs = run_keys.size
    if policy == "direct":
        # The slot holds the key of the most recent run hashed to it;
        # a stable sort by slot makes that previous run adjacent.
        # Mirrors DirectMappedCache._slot_of exactly.
        slots = (run_pages + 0x9E37 * run_arrs) % capacity
        order = np.argsort(slots, kind="stable")
        slot_sorted = slots[order]
        key_sorted = run_keys[order]
        hit_sorted = (slot_sorted[1:] == slot_sorted[:-1]) & (
            key_sorted[1:] == key_sorted[:-1]
        )
        distinct = int(np.unique(run_keys).size)
        return n_runs - int(hit_sorted.sum()), distinct

    # Previous occurrence of each run's key, via one stable sort.
    order = np.argsort(run_keys, kind="stable")
    key_sorted = run_keys[order]
    prev = np.full(n_runs, -1, dtype=np.int64)
    same = key_sorted[1:] == key_sorted[:-1]
    prev[order[1:][same]] = order[:-1][same]
    cold = prev < 0
    n_unique = int(cold.sum())
    if n_unique <= capacity:
        # Fits in cache: no policy ever evicts, so every repeat hits.
        return n_unique, n_unique
    if policy != "lru":
        # FIFO is not a stack algorithm and the random policy's seeded
        # RNG must be consulted in eviction order: scalar replay.
        return None, n_unique
    repeats = np.flatnonzero(~cold)
    windows = repeats - prev[repeats] - 1
    # Run-length compression bounds the distinct count by the window
    # length, so short windows are guaranteed LRU hits.
    undecided = repeats[windows >= capacity]
    misses = n_unique
    if undecided.size:
        starts = prev[undecided] + 1
        spans = undecided - starts
        total = int(spans.sum())
        if total > max(_WINDOW_BUDGET, 8 * n_runs):
            return None, n_unique
        # One batched distinct-count over every undecided window at
        # once: gather all window elements, tag each with its window
        # id, and count first occurrences per (window, key) group via
        # a single lexsort.  Replaces a per-window ``np.unique`` loop
        # whose Python overhead dominated short-trace replays with
        # many modest windows (the hydro_2d small-n regression).
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(spans) - spans, spans
        )
        flat = run_keys[np.repeat(starts, spans) + offsets]
        win_id = np.repeat(
            np.arange(undecided.size, dtype=np.int64), spans
        )
        order = np.lexsort((flat, win_id))
        k_sorted = flat[order]
        w_sorted = win_id[order]
        first = np.empty(total, dtype=bool)
        first[0] = True
        first[1:] = (k_sorted[1:] != k_sorted[:-1]) | (
            w_sorted[1:] != w_sorted[:-1]
        )
        distinct_per_window = np.bincount(
            w_sorted[first], minlength=undecided.size
        )
        misses += int((distinct_per_window >= capacity).sum())
    return misses, n_unique


def _count_misses_scalar(
    run_arrs: np.ndarray, run_pages: np.ndarray, policy: str, capacity: int
) -> int:
    """The scalar engine's own probe loop, one ``access`` per run."""
    cache = make_cache(policy, capacity)
    misses = 0
    for arr, page in zip(run_arrs.tolist(), run_pages.tolist()):
        if not cache.access((arr, page)):
            misses += 1
    return misses


def simulate_vec(
    trace: Trace,
    config: MachineConfig,
    telemetry: dict[str, int] | None = None,
) -> SimResult:
    """Classify every access in ``trace`` under ``config``, columnarly.

    Bit-identical to :func:`repro.core.simulator.simulate` on every
    counter.  ``telemetry``, when given, receives ``vectorised_pes``
    and ``fallback_pes`` — how many PE cache walks each path decided.
    """
    n_pes = config.n_pes
    ps = config.page_size
    tables = [PageTable(size, ps) for size in trace.array_sizes]
    stats = AccessStats(n_pes, trace.array_names)
    if telemetry is not None:
        telemetry["vectorised_pes"] = 0
        telemetry["fallback_pes"] = 0

    if trace.n_instances == 0:
        return SimResult(
            config,
            stats,
            np.zeros(n_pes, dtype=np.int64),
            np.zeros(n_pes, dtype=np.int64),
        )

    columns = trace.columnar()

    with _phase("classify_vec"):
        w_pages = trace.w_flat // ps
        exec_pe = _owners_by_array(
            trace.w_arr, w_pages, tables, config.partition, n_pes
        )
        if (
            config.reduction_strategy == "subrange"
            and trace.reduction_mask.any()
        ):
            exec_pe = subrange_placement(trace, tables, config, exec_pe)
        stats.add_vector(
            AccessKind.WRITE, np.bincount(exec_pe, minlength=n_pes)
        )

    def finish(
        page_fetches: np.ndarray, distinct_pages: np.ndarray
    ) -> SimResult:
        if (
            config.reduction_strategy == "subrange"
            and trace.reduction_mask.any()
        ):
            # The combine phase is inherently ordered per accumulator;
            # charge it through the scalar engine's shared routine.
            with _phase("fallback_scalar"):
                _charge_subrange_combine(
                    trace, tables, config, exec_pe, stats
                )
        return SimResult(config, stats, page_fetches, distinct_pages)

    if trace.n_reads == 0:
        return finish(
            np.zeros(n_pes, dtype=np.int64), np.zeros(n_pes, dtype=np.int64)
        )

    with _phase("classify_vec"):
        r_exec = exec_pe[columns.r_instance]
        r_pages = trace.r_flat // ps
        r_owner = _owners_by_array(
            trace.r_arr, r_pages, tables, config.partition, n_pes
        )
        local_mask = r_owner == r_exec
        stats.add_vector(
            AccessKind.LOCAL_READ,
            np.bincount(r_exec[local_mask], minlength=n_pes),
        )
        nonlocal_idx = np.flatnonzero(~local_mask)

    page_fetches = np.zeros(n_pes, dtype=np.int64)
    distinct_pages = np.zeros(n_pes, dtype=np.int64)
    if nonlocal_idx.size == 0:
        return finish(page_fetches, distinct_pages)

    with _phase("cache_sim_vec"):
        nl_exec = r_exec[nonlocal_idx]
        nl_arr = columns.r_arr64[nonlocal_idx]
        nl_page = r_pages[nonlocal_idx]
        composite = nl_arr * (1 << 40) + nl_page
        # One stable sort groups every PE's accesses contiguously while
        # preserving each PE's program order — the segmented mirror of
        # the scalar engine's per-PE boolean masks.
        order = np.argsort(nl_exec, kind="stable")
        seg_exec = nl_exec[order]
        seg_keys = composite[order]

    if not config.has_cache:
        with _phase("cache_sim_vec"):
            remote = np.bincount(nl_exec, minlength=n_pes)
            stats.add_vector(AccessKind.REMOTE_READ, remote)
            page_fetches += remote
            for pe, start, end in _segments(seg_exec):
                distinct_pages[pe] = np.unique(seg_keys[start:end]).size
        return finish(page_fetches, distinct_pages)

    if config.cache_policy not in POLICIES:
        # Same error, same point in the replay as the scalar engine's
        # first make_cache call.
        make_cache(config.cache_policy, config.cache_pages)

    cached_per_pe = np.zeros(n_pes, dtype=np.int64)
    remote_per_pe = np.zeros(n_pes, dtype=np.int64)
    pending: list[tuple[int, np.ndarray, np.ndarray, int]] = []
    with _phase("cache_sim_vec"):
        capacity = config.cache_pages
        for pe, start, end in _segments(seg_exec):
            keys = seg_keys[start:end]
            # Run-length compression: consecutive touches of one page
            # collapse into a single cache probe.
            change = np.empty(keys.size, dtype=bool)
            change[0] = True
            np.not_equal(keys[1:], keys[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            run_keys = keys[starts]
            # Unpack the composite back into (array, page) — exact,
            # since pages occupy the low 40 bits by construction.
            run_arrs = run_keys >> 40
            run_pages = run_keys & ((1 << 40) - 1)
            misses, distinct_pages[pe] = _count_misses_vec(
                run_keys, run_arrs, run_pages, config.cache_policy, capacity
            )
            if misses is None:
                pending.append((pe, run_arrs, run_pages, keys.size))
                continue
            if telemetry is not None:
                telemetry["vectorised_pes"] += 1
            # Per run: a hit caches `length` reads; a miss fetches the
            # page (1 remote read) and caches the remaining length-1.
            cached_per_pe[pe] = keys.size - misses
            remote_per_pe[pe] = misses
    if pending:
        with _phase("fallback_scalar"):
            for pe, run_arrs, run_pages, n_accesses in pending:
                misses = _count_misses_scalar(
                    run_arrs, run_pages, config.cache_policy, capacity
                )
                if telemetry is not None:
                    telemetry["fallback_pes"] += 1
                cached_per_pe[pe] = n_accesses - misses
                remote_per_pe[pe] = misses
    stats.add_vector(AccessKind.CACHED_READ, cached_per_pe)
    stats.add_vector(AccessKind.REMOTE_READ, remote_per_pe)
    page_fetches += remote_per_pe
    return finish(page_fetches, distinct_pages)
