"""Columnar (vectorised) replay of the untimed simulation.

:func:`simulate_vec` produces **bit-identical** counters to
:func:`repro.core.simulator.simulate` — same :class:`AccessStats`,
same per-PE fetch vectors — but replaces the scalar per-run Python
cache walk with whole-column numpy decisions wherever the replacement
policy admits a closed form:

* **no cache** — classification alone decides everything; fully
  vectorised (the scalar engine already is, modulo the per-PE
  distinct-page loop).
* **no evictions** (distinct pages ≤ capacity) — every key misses
  exactly once, every repeat hits.  Exact for ``lru``, ``fifo`` and
  ``random`` alike: with no evictions the three policies are
  indistinguishable and the random policy's RNG is never consulted.
* **direct** — one slot per key hash at any capacity: a run hits iff
  the previous run hashing to its slot carried the same key, which a
  stable sort by slot answers for every run at once.
* **lru** — a stack algorithm, so the Mattson stack-distance property
  (see :mod:`repro.core.reuse`) decides each run exactly: a re-touch
  hits iff fewer than ``capacity`` distinct keys intervened.  Runs
  whose intervening window is shorter than the capacity are guaranteed
  hits; the remaining few are decided by an exact per-window distinct
  count, under a total-window budget.
* **fifo** — not a stack algorithm (no reuse distance exists), but
  misses are decidable from *eviction-epoch arithmetic*: every miss
  admits its key at a monotonically increasing fill epoch, and a
  reference hits iff its key's latest admission is within ``capacity``
  fills of the current fill count.  :func:`_fifo_fixed_point` solves
  that mutual recursion (epochs depend on misses depend on epochs)
  with a budgeted whole-column fixed-point iteration whose fixed
  points are provably unique — convergence is a certificate of
  exactness, and non-convergence within the round budget falls back.

Order-dependent spans fall back to the *scalar* engine's own
machinery so divergence is impossible by construction: seeded-random
eviction sequences (and the rare non-convergent FIFO span) replay
through :func:`repro.cache.make_cache` run-by-run, and the
subrange-reduction combine is charged by the shared
:func:`repro.core.simulator._charge_subrange_combine`.  The fidelity
contract is enforced generatively by ``tests/test_vec_fidelity.py``.
The full decision tree across backends lives in
``docs/fastpaths.md``.

Profiling phases mirror the scalar engine's (``classify`` /
``cache_sim`` / ``reduction``) as ``classify_vec`` / ``cache_sim_vec``
plus ``fallback_scalar`` for the delegated spans, so
``tools/replay_profile.py`` can attribute replay time to the
vectorised and scalar halves separately.
"""

from __future__ import annotations

import numpy as np

from ..cache import POLICIES, make_cache
from ..ir.trace import Trace
from ..memory.pages import PageTable
from ..obs.profile import phase as _phase
from .access import AccessKind
from .simulator import (
    MachineConfig,
    SimResult,
    _charge_subrange_combine,
    _owners_by_array,
    subrange_placement,
)
from .stats import AccessStats

__all__ = ["simulate_vec"]

#: Ceiling on the summed undecided-window lengths of one PE's LRU walk
#: before the exact per-window distinct counts would cost more than the
#: scalar replay they replace; past it the PE falls back wholesale.
_WINDOW_BUDGET = 1 << 16

#: Round budget for the FIFO fixed-point iteration.  Each round is a
#: handful of O(n) column passes and the correct prefix provably grows
#: by at least one reference per round, so convergence is guaranteed
#: eventually — but a span still churning after this many rounds is
#: cheaper to hand to the scalar walk than to keep iterating.
_FIFO_ROUNDS = 32


def _fifo_fixed_point(
    keys: np.ndarray,
    capacity: int,
    seg: np.ndarray | None = None,
    max_rounds: int = _FIFO_ROUNDS,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Exact FIFO miss mask via a budgeted fixed-point iteration.

    ``keys`` is a run-length-compressed reference stream (optionally
    split into independent contiguous segments by ``seg`` — one cold
    FIFO cache per segment).  Returns ``(miss, admit)`` where ``miss``
    is the boolean per-reference miss mask and ``admit[i]`` is the
    key's *inclusive* admission epoch after reference ``i`` (its own
    fill count if ``i`` missed, else the epoch of its latest prior
    miss) — or ``None`` when the iteration has not stabilised within
    ``max_rounds``.

    Why iterate: FIFO admits each missing key at a monotonically
    increasing fill epoch and evicts it exactly ``capacity`` fills
    later, so reference ``i`` to key ``k`` hits iff ``k`` has a prior
    miss ``j`` (same segment, no later miss of ``k``) with
    ``fills(i) - fills(j) <= capacity``, where ``fills(x)`` counts
    misses strictly before ``x``.  Misses determine the fill epochs
    and the fill epochs determine the misses — a mutual recursion with
    no closed form (FIFO is not a stack algorithm).  The iteration
    applies that rule as an operator ``F`` on guess vectors ``m``.

    Why a fixed point is *exact*: any fixed point ``m = F(m)`` equals
    the true simulation, by induction on position.  ``F(m)[i]``
    depends only on ``m`` at positions ``< i``; position 0 of each
    segment is unconditionally cold under ``F``; and if ``m`` agrees
    with the truth on every position before ``i``, the rule computes
    ``i``'s true outcome.  So a stable ``m`` agrees with the truth at
    position 0, hence (applying ``F`` once more, which changes
    nothing) at position 1, and so on — convergence is a certificate,
    never an approximation.  The same argument shows each round
    extends the correct prefix by at least one reference, so the
    iteration terminates in at most ``n`` rounds; in practice a
    handful suffice because corrections propagate in large blocks.
    """
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    # Group each (segment, key) chain contiguously, positions ascending
    # (lexsort/argsort stability), so "latest prior miss of this key"
    # becomes a shift + running max along the sorted axis.
    if seg is None:
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        chain = np.empty(n, dtype=bool)
        chain[0] = True
        chain[1:] = sk[1:] != sk[:-1]
    else:
        order = np.lexsort((keys, seg))
        sk, ss = keys[order], seg[order]
        chain = np.empty(n, dtype=bool)
        chain[0] = True
        chain[1:] = (sk[1:] != sk[:-1]) | (ss[1:] != ss[:-1])
    # Per-chain offsets turn the global running max into a segmented
    # one: fill epochs live in [0, n] and hit markers are -1, so with
    # a chain stride of n + 2 no value can reach into the next chain
    # and chain-start positions decode to "no prior miss" (< 0).
    lim = np.int64(n + 2)
    base = (np.cumsum(chain) - 1) * lim
    miss = np.ones(n, dtype=bool)
    shifted = np.empty(n, dtype=np.int64)
    for _ in range(max_rounds):
        fills = np.cumsum(miss) - miss  # misses strictly before i
        f_sorted = fills[order]
        vals = np.where(miss[order], f_sorted, -1) + base
        shifted[0] = -2
        shifted[1:] = vals[:-1]
        prior = np.maximum.accumulate(shifted) - base
        new_sorted = (prior < 0) | (f_sorted - prior > capacity)
        new = np.empty(n, dtype=bool)
        new[order] = new_sorted
        if np.array_equal(new, miss):
            admit = np.empty(n, dtype=np.int64)
            admit[order] = np.where(new_sorted, f_sorted, prior)
            return new, admit
        miss = new
    return None


def _segments(sorted_pes: np.ndarray):
    """Yield ``(pe, start, end)`` for each PE's contiguous slice."""
    boundaries = np.flatnonzero(sorted_pes[1:] != sorted_pes[:-1]) + 1
    edges = np.concatenate(
        ([0], boundaries, [sorted_pes.size])
    )
    for start, end in zip(edges[:-1].tolist(), edges[1:].tolist()):
        yield int(sorted_pes[start]), start, end


def _count_misses_vec(
    run_keys: np.ndarray,
    run_arrs: np.ndarray,
    run_pages: np.ndarray,
    policy: str,
    capacity: int,
) -> tuple[int | None, int]:
    """``(miss count or None, distinct keys)`` for one PE's runs.

    A None miss count means the sequence is order-dependent under this
    policy (or too expensive to decide columnarly) and must replay
    through the scalar cache.  The distinct-key count is exact either
    way — it is a by-product of the same sort the decision needs.
    """
    n_runs = run_keys.size
    if policy == "direct":
        # The slot holds the key of the most recent run hashed to it;
        # a stable sort by slot makes that previous run adjacent.
        # Mirrors DirectMappedCache._slot_of exactly.
        slots = (run_pages + 0x9E37 * run_arrs) % capacity
        order = np.argsort(slots, kind="stable")
        slot_sorted = slots[order]
        key_sorted = run_keys[order]
        hit_sorted = (slot_sorted[1:] == slot_sorted[:-1]) & (
            key_sorted[1:] == key_sorted[:-1]
        )
        distinct = int(np.unique(run_keys).size)
        return n_runs - int(hit_sorted.sum()), distinct

    # Previous occurrence of each run's key, via one stable sort.
    order = np.argsort(run_keys, kind="stable")
    key_sorted = run_keys[order]
    prev = np.full(n_runs, -1, dtype=np.int64)
    same = key_sorted[1:] == key_sorted[:-1]
    prev[order[1:][same]] = order[:-1][same]
    cold = prev < 0
    n_unique = int(cold.sum())
    if n_unique <= capacity:
        # Fits in cache: no policy ever evicts, so every repeat hits.
        return n_unique, n_unique
    if policy == "fifo":
        solved = _fifo_fixed_point(run_keys, capacity)
        if solved is None:
            return None, n_unique
        return int(solved[0].sum()), n_unique
    if policy != "lru":
        # The random policy's seeded RNG must be consulted in eviction
        # order: scalar replay.
        return None, n_unique
    repeats = np.flatnonzero(~cold)
    windows = repeats - prev[repeats] - 1
    # Run-length compression bounds the distinct count by the window
    # length, so short windows are guaranteed LRU hits.
    undecided = repeats[windows >= capacity]
    misses = n_unique
    if undecided.size:
        starts = prev[undecided] + 1
        spans = undecided - starts
        total = int(spans.sum())
        if total > max(_WINDOW_BUDGET, 8 * n_runs):
            return None, n_unique
        # One batched distinct-count over every undecided window at
        # once: gather all window elements, tag each with its window
        # id, and count first occurrences per (window, key) group via
        # a single lexsort.  Replaces a per-window ``np.unique`` loop
        # whose Python overhead dominated short-trace replays with
        # many modest windows (the hydro_2d small-n regression).
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(spans) - spans, spans
        )
        flat = run_keys[np.repeat(starts, spans) + offsets]
        win_id = np.repeat(
            np.arange(undecided.size, dtype=np.int64), spans
        )
        order = np.lexsort((flat, win_id))
        k_sorted = flat[order]
        w_sorted = win_id[order]
        first = np.empty(total, dtype=bool)
        first[0] = True
        first[1:] = (k_sorted[1:] != k_sorted[:-1]) | (
            w_sorted[1:] != w_sorted[:-1]
        )
        distinct_per_window = np.bincount(
            w_sorted[first], minlength=undecided.size
        )
        misses += int((distinct_per_window >= capacity).sum())
    return misses, n_unique


def _count_misses_scalar(
    run_arrs: np.ndarray, run_pages: np.ndarray, policy: str, capacity: int
) -> int:
    """The scalar engine's own probe loop, one ``access`` per run."""
    cache = make_cache(policy, capacity)
    misses = 0
    for arr, page in zip(run_arrs.tolist(), run_pages.tolist()):
        if not cache.access((arr, page)):
            misses += 1
    return misses


def simulate_vec(
    trace: Trace,
    config: MachineConfig,
    telemetry: dict[str, int] | None = None,
) -> SimResult:
    """Classify every access in ``trace`` under ``config``, columnarly.

    Bit-identical to :func:`repro.core.simulator.simulate` on every
    counter.  ``telemetry``, when given, receives ``vectorised_pes``
    and ``fallback_pes`` — how many PE cache walks each path decided.
    """
    n_pes = config.n_pes
    ps = config.page_size
    tables = [PageTable(size, ps) for size in trace.array_sizes]
    stats = AccessStats(n_pes, trace.array_names)
    if telemetry is not None:
        telemetry["vectorised_pes"] = 0
        telemetry["fallback_pes"] = 0

    if trace.n_instances == 0:
        return SimResult(
            config,
            stats,
            np.zeros(n_pes, dtype=np.int64),
            np.zeros(n_pes, dtype=np.int64),
        )

    columns = trace.columnar()

    with _phase("classify_vec"):
        w_pages = trace.w_flat // ps
        exec_pe = _owners_by_array(
            trace.w_arr, w_pages, tables, config.partition, n_pes
        )
        if (
            config.reduction_strategy == "subrange"
            and trace.reduction_mask.any()
        ):
            exec_pe = subrange_placement(trace, tables, config, exec_pe)
        stats.add_vector(
            AccessKind.WRITE, np.bincount(exec_pe, minlength=n_pes)
        )

    def finish(
        page_fetches: np.ndarray, distinct_pages: np.ndarray
    ) -> SimResult:
        if (
            config.reduction_strategy == "subrange"
            and trace.reduction_mask.any()
        ):
            # The combine phase is inherently ordered per accumulator;
            # charge it through the scalar engine's shared routine.
            with _phase("fallback_scalar"):
                _charge_subrange_combine(
                    trace, tables, config, exec_pe, stats
                )
        return SimResult(config, stats, page_fetches, distinct_pages)

    if trace.n_reads == 0:
        return finish(
            np.zeros(n_pes, dtype=np.int64), np.zeros(n_pes, dtype=np.int64)
        )

    with _phase("classify_vec"):
        r_exec = exec_pe[columns.r_instance]
        r_pages = trace.r_flat // ps
        r_owner = _owners_by_array(
            trace.r_arr, r_pages, tables, config.partition, n_pes
        )
        local_mask = r_owner == r_exec
        stats.add_vector(
            AccessKind.LOCAL_READ,
            np.bincount(r_exec[local_mask], minlength=n_pes),
        )
        nonlocal_idx = np.flatnonzero(~local_mask)

    page_fetches = np.zeros(n_pes, dtype=np.int64)
    distinct_pages = np.zeros(n_pes, dtype=np.int64)
    if nonlocal_idx.size == 0:
        return finish(page_fetches, distinct_pages)

    with _phase("cache_sim_vec"):
        nl_exec = r_exec[nonlocal_idx]
        nl_arr = columns.r_arr64[nonlocal_idx]
        nl_page = r_pages[nonlocal_idx]
        composite = nl_arr * (1 << 40) + nl_page
        # One stable sort groups every PE's accesses contiguously while
        # preserving each PE's program order — the segmented mirror of
        # the scalar engine's per-PE boolean masks.
        order = np.argsort(nl_exec, kind="stable")
        seg_exec = nl_exec[order]
        seg_keys = composite[order]

    if not config.has_cache:
        with _phase("cache_sim_vec"):
            remote = np.bincount(nl_exec, minlength=n_pes)
            stats.add_vector(AccessKind.REMOTE_READ, remote)
            page_fetches += remote
            for pe, start, end in _segments(seg_exec):
                distinct_pages[pe] = np.unique(seg_keys[start:end]).size
        return finish(page_fetches, distinct_pages)

    if config.cache_policy not in POLICIES:
        # Same error, same point in the replay as the scalar engine's
        # first make_cache call.
        make_cache(config.cache_policy, config.cache_pages)

    cached_per_pe = np.zeros(n_pes, dtype=np.int64)
    remote_per_pe = np.zeros(n_pes, dtype=np.int64)
    pending: list[tuple[int, np.ndarray, np.ndarray, int]] = []
    with _phase("cache_sim_vec"):
        capacity = config.cache_pages
        for pe, start, end in _segments(seg_exec):
            keys = seg_keys[start:end]
            # Run-length compression: consecutive touches of one page
            # collapse into a single cache probe.
            change = np.empty(keys.size, dtype=bool)
            change[0] = True
            np.not_equal(keys[1:], keys[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            run_keys = keys[starts]
            # Unpack the composite back into (array, page) — exact,
            # since pages occupy the low 40 bits by construction.
            run_arrs = run_keys >> 40
            run_pages = run_keys & ((1 << 40) - 1)
            misses, distinct_pages[pe] = _count_misses_vec(
                run_keys, run_arrs, run_pages, config.cache_policy, capacity
            )
            if misses is None:
                pending.append((pe, run_arrs, run_pages, keys.size))
                continue
            if telemetry is not None:
                telemetry["vectorised_pes"] += 1
            # Per run: a hit caches `length` reads; a miss fetches the
            # page (1 remote read) and caches the remaining length-1.
            cached_per_pe[pe] = keys.size - misses
            remote_per_pe[pe] = misses
    if pending:
        with _phase("fallback_scalar"):
            for pe, run_arrs, run_pages, n_accesses in pending:
                misses = _count_misses_scalar(
                    run_arrs, run_pages, config.cache_policy, capacity
                )
                if telemetry is not None:
                    telemetry["fallback_pes"] += 1
                cached_per_pe[pe] = n_accesses - misses
                remote_per_pe[pe] = misses
    stats.add_vector(AccessKind.CACHED_READ, cached_per_pe)
    stats.add_vector(AccessKind.REMOTE_READ, remote_per_pe)
    page_fetches += remote_per_pe
    return finish(page_fetches, distinct_pages)
