"""Partitioning advisor: compiler-selectable scheme and page size (§9).

The paper closes with: "we must explore ways for providing different
programmer- or compiler-selectable partitioning schemes.  These would
allow the programmer or compiler to select the partitioning method
based on some analysis of the access behavior" and likewise for the
page size.  This module is that selector: it classifies a kernel,
searches the (partition scheme x page size) space on the kernel's own
trace, and recommends the configuration minimising an objective that
combines remote traffic with load balance.

The search is exhaustive over a small grid — exactly what a compiler
could afford per kernel, since one interpreter trace serves every
candidate configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..ir.loops import Program
from ..ir.trace import Trace
from .classify import AccessClass, classify_static
from .partition import (
    BlockCyclicPartition,
    BlockPartition,
    ModuloPartition,
    PartitionScheme,
)
from .simulator import MachineConfig, simulate
from .stats import LoadBalance

__all__ = ["Advice", "CandidateScore", "advise", "advise_trace"]

#: Default candidate grids (the paper's two page sizes plus neighbours).
DEFAULT_PAGE_SIZES: tuple[int, ...] = (16, 32, 64, 128)
DEFAULT_SCHEMES: tuple[PartitionScheme, ...] = (
    ModuloPartition(),
    BlockPartition(),
    BlockCyclicPartition(block=2),
    BlockCyclicPartition(block=4),
)
#: Weight of load imbalance (coefficient of variation of per-PE reads)
#: against remote-read percentage in the objective.  One CV point is
#: deemed as bad as `BALANCE_WEIGHT` percentage points of remote reads.
BALANCE_WEIGHT = 20.0


@dataclass(frozen=True)
class CandidateScore:
    """One evaluated (scheme, page size) candidate."""

    scheme: PartitionScheme
    page_size: int
    remote_pct: float
    balance_cv: float

    @property
    def objective(self) -> float:
        """Lower is better: remote%% plus weighted imbalance."""
        return self.remote_pct + BALANCE_WEIGHT * self.balance_cv

    def describe(self) -> str:
        return (
            f"{self.scheme.label:>14} ps={self.page_size:<4} "
            f"remote%={self.remote_pct:6.2f} cv={self.balance_cv:.3f} "
            f"objective={self.objective:7.2f}"
        )


@dataclass
class Advice:
    """The advisor's recommendation plus its full evidence."""

    kernel: str
    access_class: AccessClass
    best: CandidateScore
    candidates: list[CandidateScore] = field(default_factory=list)

    @property
    def scheme(self) -> PartitionScheme:
        return self.best.scheme

    @property
    def page_size(self) -> int:
        return self.best.page_size

    def improvement_over(
        self, scheme_name: str, page_size: int
    ) -> float:
        """Remote-%% saved relative to a named baseline candidate."""
        for cand in self.candidates:
            if cand.scheme.name == scheme_name and cand.page_size == page_size:
                return cand.remote_pct - self.best.remote_pct
        raise KeyError(f"no candidate {scheme_name}/ps{page_size}")

    def table(self) -> str:
        lines = [
            f"advice for {self.kernel} (class {self.access_class}):",
        ]
        for cand in sorted(self.candidates, key=lambda c: c.objective):
            marker = " <== recommended" if cand == self.best else ""
            lines.append("  " + cand.describe() + marker)
        return "\n".join(lines)


def advise_trace(
    kernel: str,
    trace: Trace,
    access_class: AccessClass,
    *,
    n_pes: int = 16,
    cache_elems: int = 256,
    page_sizes: Sequence[int] = DEFAULT_PAGE_SIZES,
    schemes: Sequence[PartitionScheme] = DEFAULT_SCHEMES,
) -> Advice:
    """Search the candidate grid on an existing trace."""
    candidates = []
    for scheme in schemes:
        for page_size in page_sizes:
            config = MachineConfig(
                n_pes=n_pes,
                page_size=page_size,
                cache_elems=cache_elems,
                partition=scheme,
            )
            result = simulate(trace, config)
            reads = result.stats.reads_per_pe()
            balance = (
                LoadBalance.from_series(reads).cv if reads.sum() else 0.0
            )
            candidates.append(
                CandidateScore(
                    scheme=scheme,
                    page_size=page_size,
                    remote_pct=result.remote_read_pct,
                    balance_cv=balance,
                )
            )
    best = min(candidates, key=lambda c: (c.objective, c.page_size))
    return Advice(
        kernel=kernel,
        access_class=access_class,
        best=best,
        candidates=candidates,
    )


def advise(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    *,
    n_pes: int = 16,
    cache_elems: int = 256,
    page_sizes: Sequence[int] = DEFAULT_PAGE_SIZES,
    schemes: Sequence[PartitionScheme] = DEFAULT_SCHEMES,
) -> Advice:
    """Classify a kernel and recommend (scheme, page size) for it."""
    from ..ir.interp import run_program
    from .classify import classify_dynamic

    static_hint = classify_static(program).hint
    trace = run_program(program, inputs).trace
    access_class, _ = classify_dynamic(trace, static_hint=static_hint)
    return advise_trace(
        program.name,
        trace,
        access_class,
        n_pes=n_pes,
        cache_elems=cache_elems,
        page_sizes=page_sizes,
        schemes=schemes,
    )
