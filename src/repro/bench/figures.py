"""Series generators for the paper's five figures (§7).

Each ``figureN`` function rebuilds the figure's workload, runs the
configuration sweep, and returns a :class:`FigureData` whose series
carry the same labels as the paper's legends ("Cache, ps 32",
"No Cache, ps 64", ...).  ``render`` turns it into the ASCII table
quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.access import AccessKind
from ..core.simulator import MachineConfig
from ..core.stats import LoadBalance
from ..engine.executor import run_grid
from ..engine.store import kernel_trace_cached
from .report import render_series_table, render_table
from .sweep import DEFAULT_PES, Sweep

__all__ = [
    "FigureData",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "render",
]


@dataclass
class FigureData:
    """One reproduced figure: x axis plus labelled series."""

    figure_id: str
    title: str
    kernel: str
    x_label: str
    x_values: tuple[int, ...]
    series: dict[str, list[float]]
    unit: str = "% of reads remote"
    notes: str = ""
    load_balance: dict[str, LoadBalance] = field(default_factory=dict)


def _pe_sweep_figure(
    figure_id: str,
    title: str,
    kernel_name: str,
    n: int | None,
    pes: Sequence[int],
    notes: str = "",
) -> FigureData:
    # Store-backed acquisition: the kernel is interpreted at most once
    # per machine; later figure regenerations replay the stored trace.
    trace = kernel_trace_cached(kernel_name, n=n)
    sweep = Sweep.run(kernel_name, trace, pes=pes)
    return FigureData(
        figure_id=figure_id,
        title=title,
        kernel=kernel_name,
        x_label="Number of PEs",
        x_values=tuple(sweep.pe_axis()),
        series=sweep.series(),
        notes=notes,
    )


def figure1(n: int = 1000, pes: Sequence[int] = DEFAULT_PES) -> FigureData:
    """Figure 1 — Skewed access pattern (Hydro Fragment, skew 11).

    Expected shape: No-Cache series flat around 20% (ps 32) / 10%
    (ps 64); Cache series near 1%.  "Caching is important in this
    common class."
    """
    return _pe_sweep_figure(
        "Figure 1",
        "Skewed access pattern (skew of 11)",
        "hydro_fragment",
        n,
        pes,
        notes="Paper: ~20% remote without cache at ps 32, ~1% with cache.",
    )


def figure2(n: int = 1024, pes: Sequence[int] = DEFAULT_PES) -> FigureData:
    """Figure 2 — Cyclic access pattern (ICCG).

    Expected shape: No-Cache series high (toward 100%) and growing with
    PEs; Cache series very low.  "Caching and page size can reduce the
    percentage of remote reads significantly."
    """
    return _pe_sweep_figure(
        "Figure 2",
        "Cyclic access pattern (ICCG)",
        "iccg",
        n,
        pes,
        notes=(
            "Paper: without a cache most accesses are remote; with a "
            "cache the ratio drops dramatically."
        ),
    )


def figure3(n: int = 100, pes: Sequence[int] = DEFAULT_PES) -> FigureData:
    """Figure 3 — Cyclic + skewed combination (2-D Explicit Hydro).

    Expected shape: No-Cache flat under ~10%; Cache series *decreasing*
    as PEs grow (total cache grows until each PE's page cycle fits).
    """
    return _pe_sweep_figure(
        "Figure 3",
        "Cyclic and skewed access pattern combination (2-D hydro)",
        "hydro_2d",
        n,
        pes,
        notes=(
            "Paper: remote ratio decreases as the number of PEs "
            "increases, aided further by caching."
        ),
    )


def figure4(n: int = 256, pes: Sequence[int] = DEFAULT_PES) -> FigureData:
    """Figure 4 — Random access pattern (General Linear Recurrence).

    Expected shape: high remote ratios with the 256-element cache
    barely distinguishable from no cache.
    """
    return _pe_sweep_figure(
        "Figure 4",
        "Random access pattern (General Linear Recurrence Equations)",
        "linear_recurrence",
        n,
        pes,
        notes="Paper: poor performance regardless of the (small) cache.",
    )


def figure5(
    n: int = 510, n_pes: int = 64, page_size: int = 32, cache_elems: int = 256
) -> FigureData:
    """Figure 5 — Load balance of a typical loop (2-D hydro, 64 PEs).

    Four per-PE series: remote and local reads, with and without the
    cache.  Expected shape: every PE performs a comparable number of
    remote reads and of local reads ("evenly balanced loads result from
    the area-of-responsibility concept").

    The default n=510 makes each array exactly (510+2)*8 = 4096
    elements = 128 pages, i.e. two pages per PE at 64 PEs and page size
    32 — all PEs participate, as in the paper's figure.
    """
    trace = kernel_trace_cached("hydro_2d", n=n)
    cfg = MachineConfig(n_pes=n_pes, page_size=page_size, cache_elems=cache_elems)
    # Through the engine like every other figure: the grid is two
    # untimed scenarios, evaluated via the backend registry.
    with_cache, without_cache = run_grid(trace, [cfg, cfg.without_cache()])
    series = {
        "Remote with Cache": with_cache.stats.per_pe(
            AccessKind.REMOTE_READ
        ).astype(float).tolist(),
        "Remote with No Cache": without_cache.stats.per_pe(
            AccessKind.REMOTE_READ
        ).astype(float).tolist(),
        "Local with Cache": with_cache.stats.per_pe(
            AccessKind.LOCAL_READ
        ).astype(float).tolist(),
        "Local with No Cache": without_cache.stats.per_pe(
            AccessKind.LOCAL_READ
        ).astype(float).tolist(),
    }
    balance = {
        name: LoadBalance.from_series(np.asarray(values))
        for name, values in series.items()
    }
    return FigureData(
        figure_id="Figure 5",
        title=(
            f"Load balance of a typical SD loop "
            f"(2-D Explicit Hydro, page size {page_size}, {n_pes} PEs)"
        ),
        kernel="hydro_2d",
        x_label="Processor number",
        x_values=tuple(range(n_pes)),
        series=series,
        unit="reads",
        notes=(
            "Paper: each of the sixty-four PEs performs a comparable "
            "number of remote reads and local reads."
        ),
        load_balance=balance,
    )


def render(figure: FigureData) -> str:
    """ASCII rendition of a figure (table plus load-balance summary)."""
    parts = [
        f"{figure.figure_id}: {figure.title}",
        f"kernel: {figure.kernel}    unit: {figure.unit}",
    ]
    if figure.notes:
        parts.append(f"expected shape: {figure.notes}")
    parts.append(
        render_series_table(
            figure.x_label, figure.x_values, figure.series, unit=""
        )
    )
    if figure.load_balance:
        rows = [
            [name, lb.mean, lb.std, lb.minimum, lb.maximum, lb.cv, lb.jain_index]
            for name, lb in figure.load_balance.items()
        ]
        parts.append(
            render_table(
                ["series", "mean", "std", "min", "max", "cv", "jain"],
                rows,
                title="load balance summary",
            )
        )
    return "\n\n".join(parts)
