"""Parameter sweeps over machine configurations (§6).

"The parameters that we varied were: number of processors; page size
(in units of atomic data elements)" — with the cache toggled on/off per
series.  A :class:`Sweep` runs one kernel's trace over the cross
product and exposes the results keyed by configuration, ready for the
figure and table generators.

The evaluation itself is delegated to :mod:`repro.engine`: the grid is
materialised as :class:`~repro.core.simulator.MachineConfig` points and
executed through :func:`repro.engine.run_grid`, which can fan the work
out across cores (``parallel=True``) while preserving the canonical
result order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..backends import EvalOutcome
from ..core.partition import ModuloPartition, PartitionScheme
from ..core.simulator import MachineConfig
from ..engine.campaign import DEFAULT_CACHES, DEFAULT_PAGE_SIZES, DEFAULT_PES
from ..engine.executor import run_grid
from ..engine.store import build_trace
from ..ir.loops import Program
from ..ir.trace import Trace

__all__ = [
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "Sweep",
    "SweepPoint",
    "kernel_trace",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (configuration, outcome) pair."""

    n_pes: int
    page_size: int
    cache_elems: int
    result: EvalOutcome

    @property
    def remote_pct(self) -> float:
        return self.result.remote_read_pct

    @property
    def cached_pct(self) -> float:
        return self.result.cached_read_pct

    @property
    def series_label(self) -> str:
        cache = "Cache" if self.cache_elems else "No Cache"
        return f"{cache}, ps {self.page_size}"


@dataclass
class Sweep:
    """Results of one kernel over a configuration grid."""

    kernel: str
    points: list[SweepPoint] = field(default_factory=list)

    @staticmethod
    def run(
        kernel: str,
        trace: Trace,
        *,
        pes: Sequence[int] = DEFAULT_PES,
        page_sizes: Sequence[int] = DEFAULT_PAGE_SIZES,
        caches: Sequence[int] = DEFAULT_CACHES,
        cache_policy: str = "lru",
        partition: PartitionScheme | None = None,
        parallel: bool = False,
        workers: int | None = None,
    ) -> "Sweep":
        """Simulate the full cross product (trace is reused throughout)."""
        scheme = partition if partition is not None else ModuloPartition()
        configs = [
            MachineConfig(
                n_pes=n_pes,
                page_size=page_size,
                cache_elems=cache_elems,
                cache_policy=cache_policy,
                partition=scheme,
            )
            for page_size in page_sizes
            for cache_elems in caches
            for n_pes in pes
        ]
        results = run_grid(trace, configs, parallel=parallel, workers=workers)
        sweep = Sweep(kernel=kernel)
        sweep.points = [
            SweepPoint(
                n_pes=config.n_pes,
                page_size=config.page_size,
                cache_elems=config.cache_elems,
                result=result,
            )
            for config, result in zip(configs, results)
        ]
        return sweep

    @staticmethod
    def from_campaign(result, kernel: str) -> "Sweep":
        """View one kernel of a :class:`repro.engine.CampaignResult`
        as a Sweep (for the series/figure machinery)."""
        sweep = Sweep(kernel=kernel)
        for record in result.select(kernel=kernel):
            config = record.config
            sweep.points.append(
                SweepPoint(
                    n_pes=config.n_pes,
                    page_size=config.page_size,
                    cache_elems=config.cache_elems,
                    result=record.outcome,
                )
            )
        return sweep

    # -- selection ---------------------------------------------------------------
    def pe_axis(self) -> list[int]:
        return sorted({p.n_pes for p in self.points})

    def series(self) -> dict[str, list[float]]:
        """Remote-read %% per series label, ordered along the PE axis —
        the exact series of the paper's figures."""
        axis = self.pe_axis()
        out: dict[str, list[float]] = {}
        for page_size in sorted({p.page_size for p in self.points}):
            for cache_elems in sorted(
                {p.cache_elems for p in self.points}, reverse=True
            ):
                label = (
                    f"{'Cache' if cache_elems else 'No Cache'}, ps {page_size}"
                )
                values = []
                for n_pes in axis:
                    point = self.lookup(n_pes, page_size, cache_elems)
                    values.append(point.remote_pct)
                out[label] = values
        return out

    def lookup(self, n_pes: int, page_size: int, cache_elems: int) -> SweepPoint:
        for point in self.points:
            if (
                point.n_pes == n_pes
                and point.page_size == page_size
                and point.cache_elems == cache_elems
            ):
                return point
        raise KeyError(
            f"no sweep point for pes={n_pes} ps={page_size} cache={cache_elems}"
        )


def kernel_trace(
    program: Program, inputs: Mapping[str, np.ndarray]
) -> Trace:
    """Generate the kernel's trace once; it drives every configuration.

    Delegates to :func:`repro.engine.build_trace` — the single trace
    acquisition path — so every interpretation is accounted for and the
    vectorised affine fast path (bit-identical to the interpreter,
    asserted by the test suite) is used wherever it applies.
    """
    return build_trace(program, inputs)
