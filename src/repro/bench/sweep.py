"""Parameter sweeps over machine configurations (§6).

"The parameters that we varied were: number of processors; page size
(in units of atomic data elements)" — with the cache toggled on/off per
series.  A :class:`Sweep` runs one kernel's trace over the cross
product and exposes the results keyed by configuration, ready for the
figure and table generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.partition import ModuloPartition, PartitionScheme
from ..core.simulator import MachineConfig, SimResult, simulate
from ..ir.loops import Program
from ..ir.trace import Trace

__all__ = ["Sweep", "SweepPoint", "kernel_trace"]

#: The PE axis of the paper's Figures 1-4 (we extend past 16 to cover
#: the 32- and 64-PE claims of §7.1.3 and Figure 5).
DEFAULT_PES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: The paper's two page sizes.
DEFAULT_PAGE_SIZES: tuple[int, ...] = (32, 64)
#: The paper's fixed cache capacity, plus 0 for the "No Cache" series.
DEFAULT_CACHES: tuple[int, ...] = (256, 0)


@dataclass(frozen=True)
class SweepPoint:
    """One (configuration, result) pair."""

    n_pes: int
    page_size: int
    cache_elems: int
    result: SimResult

    @property
    def remote_pct(self) -> float:
        return self.result.remote_read_pct

    @property
    def cached_pct(self) -> float:
        return self.result.cached_read_pct

    @property
    def series_label(self) -> str:
        cache = "Cache" if self.cache_elems else "No Cache"
        return f"{cache}, ps {self.page_size}"


@dataclass
class Sweep:
    """Results of one kernel over a configuration grid."""

    kernel: str
    points: list[SweepPoint] = field(default_factory=list)

    @staticmethod
    def run(
        kernel: str,
        trace: Trace,
        *,
        pes: Sequence[int] = DEFAULT_PES,
        page_sizes: Sequence[int] = DEFAULT_PAGE_SIZES,
        caches: Sequence[int] = DEFAULT_CACHES,
        cache_policy: str = "lru",
        partition: PartitionScheme | None = None,
    ) -> "Sweep":
        """Simulate the full cross product (trace is reused throughout)."""
        scheme = partition if partition is not None else ModuloPartition()
        sweep = Sweep(kernel=kernel)
        for page_size in page_sizes:
            for cache_elems in caches:
                for n_pes in pes:
                    config = MachineConfig(
                        n_pes=n_pes,
                        page_size=page_size,
                        cache_elems=cache_elems,
                        cache_policy=cache_policy,
                        partition=scheme,
                    )
                    sweep.points.append(
                        SweepPoint(
                            n_pes=n_pes,
                            page_size=page_size,
                            cache_elems=cache_elems,
                            result=simulate(trace, config),
                        )
                    )
        return sweep

    # -- selection ---------------------------------------------------------------
    def pe_axis(self) -> list[int]:
        return sorted({p.n_pes for p in self.points})

    def series(self) -> dict[str, list[float]]:
        """Remote-read %% per series label, ordered along the PE axis —
        the exact series of the paper's figures."""
        axis = self.pe_axis()
        out: dict[str, list[float]] = {}
        for page_size in sorted({p.page_size for p in self.points}):
            for cache_elems in sorted(
                {p.cache_elems for p in self.points}, reverse=True
            ):
                label = (
                    f"{'Cache' if cache_elems else 'No Cache'}, ps {page_size}"
                )
                values = []
                for n_pes in axis:
                    point = self.lookup(n_pes, page_size, cache_elems)
                    values.append(point.remote_pct)
                out[label] = values
        return out

    def lookup(self, n_pes: int, page_size: int, cache_elems: int) -> SweepPoint:
        for point in self.points:
            if (
                point.n_pes == n_pes
                and point.page_size == page_size
                and point.cache_elems == cache_elems
            ):
                return point
        raise KeyError(
            f"no sweep point for pes={n_pes} ps={page_size} cache={cache_elems}"
        )


def kernel_trace(
    program: Program, inputs: Mapping[str, np.ndarray]
) -> Trace:
    """Generate the kernel's trace once; it drives every configuration.

    Uses the vectorised affine fast path (bit-identical to the
    interpreter, asserted by the test suite) and falls back to the
    interpreter for kernels with indirect subscripts.
    """
    from ..ir.vectorize import fast_trace

    return fast_trace(program, inputs)
