"""Reproductions of the paper's tabulated claims (§7.1, §8).

The paper has no numbered tables, but its text quotes concrete
numbers.  We reproduce them as three tables:

* **T1** — access-class survey: every registered kernel's static hint,
  dynamic class, and (where the paper names the loop) the paper's own
  label, with an agreement mark.
* **T2** — conclusions survey: remote-read percentages with and
  without the 256-element cache at the paper's scale ("For most access
  distributions, the percentages of remote accesses are less than 10%
  when using a cache of 256 elements").
* **T3** — the skew-reduction claim: "for an SD loop with large skew,
  we observed a reduction from 22% remote reads to 1% remote reads".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.classify import AccessClass, classify
from ..core.simulator import MachineConfig, simulate
from ..engine.store import kernel_trace_cached
from ..kernels import all_kernels, get_kernel
from .report import render_table

__all__ = [
    "ClassRow",
    "SurveyRow",
    "class_table",
    "conclusions_table",
    "render_class_table",
    "render_survey_table",
    "skew_reduction",
]


@dataclass(frozen=True)
class ClassRow:
    """One kernel's classification outcome (table T1)."""

    kernel: str
    number: int | None
    static_hint: AccessClass
    final: AccessClass
    paper: AccessClass | None

    @property
    def agrees(self) -> bool | None:
        if self.paper is None:
            return None
        return self.final == self.paper


def class_table(names: Sequence[str] | None = None) -> list[ClassRow]:
    """T1 — classify every kernel and compare with the paper's labels."""
    kernels = (
        [get_kernel(name) for name in names]
        if names is not None
        else list(all_kernels())
    )
    rows = []
    for kernel in kernels:
        program, inputs = kernel.build()
        result = classify(program, inputs)
        rows.append(
            ClassRow(
                kernel=kernel.name,
                number=kernel.number,
                static_hint=result.static.hint,
                final=result.final,
                paper=kernel.paper_class,
            )
        )
    return rows


def render_class_table(rows: Sequence[ClassRow]) -> str:
    table_rows = []
    for row in rows:
        agrees = {True: "yes", False: "NO", None: "-"}[row.agrees]
        table_rows.append(
            [
                row.kernel,
                row.number if row.number is not None else "-",
                str(row.static_hint),
                str(row.final),
                str(row.paper) if row.paper else "-",
                agrees,
            ]
        )
    return render_table(
        ["kernel", "LFK#", "static hint", "final class", "paper class", "agrees"],
        table_rows,
        title="T1: access-distribution classes vs. the paper (§7.1)",
    )


@dataclass(frozen=True)
class SurveyRow:
    """One kernel's remote ratios at the survey configuration (T2)."""

    kernel: str
    access_class: AccessClass
    remote_pct_cache: float
    cached_pct: float
    remote_pct_nocache: float

    @property
    def reduction_factor(self) -> float:
        if self.remote_pct_cache == 0:
            return float("inf") if self.remote_pct_nocache > 0 else 1.0
        return self.remote_pct_nocache / self.remote_pct_cache


def conclusions_table(
    n_pes: int = 16,
    page_size: int = 32,
    cache_elems: int = 256,
    names: Sequence[str] | None = None,
) -> list[SurveyRow]:
    """T2 — the §8 survey: remote ratios with/without the cache."""
    kernels = (
        [get_kernel(name) for name in names]
        if names is not None
        else list(all_kernels())
    )
    rows = []
    for kernel in kernels:
        program, inputs = kernel.build()
        result = classify(program, inputs)
        trace = kernel_trace_cached(kernel.name)
        cfg = MachineConfig(
            n_pes=n_pes, page_size=page_size, cache_elems=cache_elems
        )
        with_cache = simulate(trace, cfg)
        without_cache = simulate(trace, cfg.without_cache())
        rows.append(
            SurveyRow(
                kernel=kernel.name,
                access_class=result.final,
                remote_pct_cache=with_cache.remote_read_pct,
                cached_pct=with_cache.cached_read_pct,
                remote_pct_nocache=without_cache.remote_read_pct,
            )
        )
    return rows


def render_survey_table(rows: Sequence[SurveyRow], title: str = "") -> str:
    table_rows = [
        [
            row.kernel,
            str(row.access_class),
            row.remote_pct_cache,
            row.cached_pct,
            row.remote_pct_nocache,
            "inf" if row.reduction_factor == float("inf") else row.reduction_factor,
        ]
        for row in rows
    ]
    return render_table(
        [
            "kernel",
            "class",
            "remote% (cache)",
            "cached%",
            "remote% (no cache)",
            "reduction",
        ],
        table_rows,
        title=title
        or "T2: remote-access survey, 16 PEs, page size 32, 256-element cache (§8)",
    )


def skew_reduction(
    n: int = 1000, n_pes: int = 16, page_size: int = 32, cache_elems: int = 256
) -> tuple[float, float]:
    """T3 — Hydro Fragment's (no-cache, cache) remote percentages.

    The paper quotes 22% -> 1%.
    """
    trace = kernel_trace_cached("hydro_fragment", n=n)
    cfg = MachineConfig(n_pes=n_pes, page_size=page_size, cache_elems=cache_elems)
    with_cache = simulate(trace, cfg)
    without_cache = simulate(trace, cfg.without_cache())
    return without_cache.remote_read_pct, with_cache.remote_read_pct
