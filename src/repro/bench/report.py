"""ASCII rendering of figures and tables.

The harness has no plotting dependency; every figure is emitted as an
aligned numeric table (one column per series) plus, for per-PE data, a
compact bar strip.  This is the form EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_strip", "render_series_table", "render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    unit: str = "%",
) -> str:
    """Render figure-style data: one row per x value, one column per series."""
    headers = [x_label] + [
        f"{name} ({unit})" if unit else name for name in series
    ]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(headers, rows, title=title)


def bar_strip(values: Sequence[float], width: int = 50) -> list[str]:
    """Scale a nonnegative series onto `width`-character bars."""
    peak = max(values) if values else 0.0
    if peak <= 0:
        return ["" for _ in values]
    return ["#" * max(1, round(v / peak * width)) if v else "" for v in values]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
