"""Benchmark harness: sweeps, figure series, and table generators."""

from .figures import (
    FigureData,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    render,
)
from .report import bar_strip, render_series_table, render_table
from .sweep import DEFAULT_CACHES, DEFAULT_PAGE_SIZES, DEFAULT_PES, Sweep, SweepPoint, kernel_trace
from .tables import (
    ClassRow,
    SurveyRow,
    class_table,
    conclusions_table,
    render_class_table,
    render_survey_table,
    skew_reduction,
)

__all__ = [
    "ClassRow",
    "DEFAULT_CACHES",
    "DEFAULT_PAGE_SIZES",
    "DEFAULT_PES",
    "FigureData",
    "Sweep",
    "SweepPoint",
    "SurveyRow",
    "bar_strip",
    "class_table",
    "conclusions_table",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "kernel_trace",
    "render",
    "render_class_table",
    "render_series_table",
    "render_survey_table",
    "render_table",
    "skew_reduction",
]
