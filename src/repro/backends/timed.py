"""The timed discrete-event machine as an evaluation backend (§9).

Wraps :class:`repro.machine.msim.TimedMachine` behind the common
``evaluate(trace, scenario)`` contract, which is what makes every
timed scenario — topologies x cost models x execution modes —
sweepable, cacheable and parallelizable through the engine instead of
being driven by hand.  The scenario's timed knobs map directly onto
the machine's constructor; the serial baseline is recomputed per
evaluation (it is O(1) in the trace counters) so ``speedup`` travels
with every record.
"""

from __future__ import annotations

from ..ir.trace import Trace
from ..machine.msim import TimedMachine, run_compacted, serial_time
from ..obs import profile
from .base import (
    EvalOutcome,
    Scenario,
    UnsupportedScenarioError,
    register_backend,
)

__all__ = ["TimedBackend"]


class TimedBackend:
    """Backend ``"timed"``: execution time, latency hiding, contention."""

    name = "timed"
    scenario_axes: tuple[str, ...] = ("topologies", "modes", "cost_models")
    #: Every strategy the untimed simulator models is replayed on the
    #: discrete-event machine too — ``host`` funnels folds through the
    #: accumulator's owner, ``subrange`` re-places them onto their
    #: data's owners and schedules the host's partial-gather messages.
    #: The tuple (and the :class:`UnsupportedScenarioError` raised for
    #: anything outside it) stays as the backstop for hand-built
    #: scenarios carrying a strategy this backend has never heard of.
    supported_reductions: tuple[str, ...] = ("host", "subrange")
    result_schema: tuple[str, ...] = (
        "finish_time",
        "speedup",
        "stall_time",
        "messages",
        "total_hops",
        "refetches",
        "deferred_reads",
        "messages_per_link_max",
        "messages_per_link_mean",
        "contention_delay_cycles",
    )
    table_metrics: tuple[str, ...] = ("finish_time", "speedup")

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        if scenario.config.reduction_strategy not in self.supported_reductions:
            raise UnsupportedScenarioError(
                self.name,
                "reduction_strategy",
                scenario.config.reduction_strategy,
                supported=self.supported_reductions,
            )
        costs = scenario.costs

        superops = trace.attached_superops()

        def run_machine():
            # Traces with a super-op view take the analytic fast path
            # when the scenario's timing decomposes into per-PE sums
            # (run_compacted falls back to the event loop otherwise —
            # both paths are bit-identical by construction).  The path
            # is cache-policy-agnostic: it consumes the untimed
            # engine's miss ledger, so every closed form mapped in
            # docs/fastpaths.md speeds up timed replay too.
            if superops is not None and superops.ops:
                return run_compacted(
                    trace,
                    superops,
                    scenario.config,
                    topology=scenario.topology,
                    costs=costs,
                    mode=scenario.mode,
                    max_outstanding=scenario.max_outstanding,
                )
            machine = TimedMachine(
                trace,
                scenario.config,
                topology=scenario.topology,
                costs=costs,
                mode=scenario.mode,
                max_outstanding=scenario.max_outstanding,
            )
            return machine.run()

        # REPRO_PROFILE adds setup / event_loop wall columns (same
        # opt-in and bit-exactness caveat as the untimed backend).
        phases: dict[str, float] = {}
        if profile.enabled():
            with profile.collect() as phases:
                result = run_machine()
        else:
            result = run_machine()
        base = serial_time(trace, costs)
        metrics = {
            "finish_time": result.finish_time,
            "speedup": result.speedup(base),
            "stall_time": float(result.stall_time.sum()),
            "messages": float(result.messages),
            "total_hops": float(result.total_hops),
            "refetches": float(result.refetches),
            "deferred_reads": float(result.deferred_reads),
            "messages_per_link_max": result.contention[
                "messages_per_link_max"
            ],
            "messages_per_link_mean": result.contention[
                "messages_per_link_mean"
            ],
            "contention_delay_cycles": result.contention_delay_cycles,
        }
        for name, seconds in phases.items():
            metrics[f"profile_{name}_s"] = seconds
        return EvalOutcome(
            backend=self.name,
            scenario=scenario,
            stats=result.stats,
            metrics=metrics,
            per_pe={
                "finish": result.per_pe_finish,
                "stall": result.stall_time,
            },
        )


register_backend(TimedBackend())
