"""The evaluation contract: scenarios, outcomes, and the backend registry.

A *backend* is one way of evaluating a trace under a machine scenario:
the untimed trace-driven simulator of §6-§7, the timed discrete-event
machine of §9, or anything a user registers.  Every backend answers the
same call — ``evaluate(trace, scenario) -> EvalOutcome`` — so every
layer above (campaigns, the executor, the result store, the CLI) is
backend-agnostic and any scenario the registry knows is sweepable,
cacheable and parallelisable through the same engine.

A :class:`Scenario` is the full identity of one evaluation point: the
shared :class:`~repro.core.simulator.MachineConfig` plus the
backend-specific knobs (interconnect topology, cost-model preset,
execution mode, outstanding-request limit).  Scenarios are frozen,
hashable, and round-trip canonically through dicts/JSON, which gives
the result cache its content address.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from ..core.simulator import MachineConfig
from ..core.stats import AccessStats
from ..ir.trace import Trace
from ..machine.network import canonical_topology
from ..machine.pe import CostModel

__all__ = [
    "COST_MODEL_PRESETS",
    "EvalBackend",
    "EvalOutcome",
    "MODES",
    "Scenario",
    "UnsupportedScenarioError",
    "backend_names",
    "cost_model",
    "cost_model_names",
    "evaluate_scenario",
    "evaluation_count",
    "get_backend",
    "record_evaluations",
    "register_backend",
]


class UnsupportedScenarioError(ValueError):
    """A backend cannot model a scenario knob it was handed.

    Raised by a backend's ``evaluate`` when the scenario requests
    something outside the backend's modelling envelope — e.g. a
    hand-built scenario smuggling a reduction strategy no backend has
    ever heard of past the config validator (see the support matrix in
    ``docs/backends.md``; every *valid* strategy is modelled by every
    built-in backend).  The message names the backend, the knob and
    its value, plus the supported values when the backend knows them —
    sorted, so the message is deterministic whatever order the backend
    declared them in — and a failure deep inside a worker still says
    exactly which combination to change.  Subclasses
    :class:`ValueError` for backward compatibility with callers that
    catch broadly.

    Campaign specs reject unsupported combinations at *construction*
    (:class:`repro.engine.campaign.CampaignSpec` checks a backend's
    ``supported_reductions``); this error is the backstop for
    hand-built scenarios that bypass the spec validator.
    """

    def __init__(
        self,
        backend: str,
        knob: str,
        value: object,
        supported: tuple | None = None,
    ) -> None:
        self.backend = backend
        self.knob = knob
        self.value = value
        # Sorted for a deterministic message (backends declare support
        # in documentation order; the error must not depend on it).
        self.supported = (
            tuple(sorted(supported, key=str)) if supported is not None else None
        )
        message = (
            f"backend {backend!r} does not support {knob}={value!r}"
        )
        if self.supported is not None:
            message += f" (supported: {self.supported})"
        super().__init__(message)

    def __reduce__(self):
        # Exceptions pickle by re-calling ``cls(*args)``; ours takes
        # structured arguments, so spell them out — a worker-process
        # failure must survive the trip back through the pool.
        # ``type(self)``, not the base class, so subclasses raised in
        # a worker are caught as themselves by the submitter.
        return (
            type(self),
            (self.backend, self.knob, self.value, self.supported),
        )

# ---------------------------------------------------------------------------
# cost-model presets
# ---------------------------------------------------------------------------

#: Named cost models, so campaign specs stay JSON-serialisable: the
#: default era-plausible ratios plus the two network extremes the
#: ablation questions call for.
COST_MODEL_PRESETS: dict[str, CostModel] = {
    "default": CostModel(),
    # An aggressive interconnect: overheads an order of magnitude down,
    # cheap payload — the "what if the network were free-ish" bound.
    "fast-network": CostModel(
        request_overhead=2.0,
        reply_overhead=2.0,
        per_hop=1.0,
        per_element=0.05,
    ),
    # A congested/slow interconnect: everything network-side inflated
    # 4x, compute unchanged — stresses latency hiding and topology.
    "slow-network": CostModel(
        request_overhead=80.0,
        reply_overhead=80.0,
        per_hop=20.0,
        per_element=2.0,
    ),
    # Default costs plus finite per-link bandwidth: messages occupy
    # each link on their route (4 bytes/cycle ⇒ 2 cycles per 8-byte
    # element) and queue behind traffic already holding it, so the
    # contention summary feeds back into completion time.
    "contended": CostModel(
        link_bandwidth=4.0,
        contention_model="per-link",
    ),
    # The control for "contended": the per-link queueing machinery is
    # ON but bandwidth is infinite, so occupancy is exactly 0.0 and
    # every latency reproduces the "default" preset bit for bit —
    # contention_delay_cycles must come out 0 (property-tested).
    "infinite-bw": CostModel(
        link_bandwidth=float("inf"),
        contention_model="per-link",
    ),
}


def cost_model_names() -> tuple[str, ...]:
    return tuple(sorted(COST_MODEL_PRESETS))


def cost_model(name: str) -> CostModel:
    """Resolve a cost-model preset by name."""
    try:
        return COST_MODEL_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown cost model {name!r}; choose from {cost_model_names()}"
        ) from None


#: PE execution modes of the timed machine.
MODES: tuple[str, ...] = ("blocking", "multithreaded")


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One evaluation point: a machine configuration + backend knobs.

    The untimed backend reads only ``config``; the timed backend reads
    all fields; the service backend reads whatever its delegate reads.
    Fields the chosen backend does not consume should sit at their
    defaults so a scenario's canonical form (and therefore its cache
    key) is identical however it was built —
    :class:`~repro.engine.campaign.CampaignSpec` enforces this for
    every engine-built scenario.  ``backend`` is part of the canonical
    form, so the same machine point evaluated under two backends has
    two digests and two result-cache entries, by design.
    """

    config: MachineConfig
    backend: str = "untimed-vec"
    topology: str = "crossbar"
    mode: str = "blocking"
    cost_model: str = "default"
    max_outstanding: int = 4

    def __post_init__(self) -> None:
        # Canonicalise aliases ("mesh" -> "mesh2d") so equal scenarios
        # have equal dicts, labels and digests.
        object.__setattr__(
            self, "topology", canonical_topology(self.topology)
        )
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        cost_model(self.cost_model)  # fail fast on typos
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be at least 1")
        if not self.backend:
            raise ValueError("scenario needs a backend name")

    @property
    def costs(self) -> CostModel:
        return cost_model(self.cost_model)

    def with_config(self, config: MachineConfig) -> "Scenario":
        return replace(self, config=config)

    def label(self) -> str:
        """Stable display identity; non-default knobs are spelled out."""
        parts = [self.backend]
        extras = [
            str(value)
            for value, default in (
                (self.topology, "crossbar"),
                (self.mode, "blocking"),
                (self.cost_model, "default"),
                (f"out={self.max_outstanding}", "out=4"),
            )
            if value != default
        ]
        if extras:
            parts.append("[" + ",".join(extras) + "]")
        parts.append(self.config.label())
        return " ".join(parts)

    # -- (de)serialisation -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "config": self.config.to_dict(),
            "topology": self.topology,
            "mode": self.mode,
            "cost_model": self.cost_model,
            "max_outstanding": self.max_outstanding,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Scenario":
        known = {
            "backend",
            "config",
            "topology",
            "mode",
            "cost_model",
            "max_outstanding",
        }
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown scenario keys: {sorted(extra)}")
        if "config" not in data:
            raise ValueError("scenario needs a 'config' mapping")
        return Scenario(
            config=MachineConfig.from_dict(data["config"]),  # type: ignore[arg-type]
            backend=str(data.get("backend", "untimed-vec")),
            topology=str(data.get("topology", "crossbar")),
            mode=str(data.get("mode", "blocking")),
            cost_model=str(data.get("cost_model", "default")),
            max_outstanding=int(data.get("max_outstanding", 4)),  # type: ignore[arg-type]
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Scenario":
        return Scenario.from_dict(json.loads(text))

    @property
    def digest(self) -> str:
        """Content address of this scenario (canonical JSON, hashed)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class EvalOutcome:
    """What a backend returns for one (trace, scenario) evaluation.

    The common part — the paper's four access categories, per PE — is
    an :class:`AccessStats` whatever the backend; everything else rides
    in ``metrics`` (scalar columns, JSON-exported as-is) and ``per_pe``
    (named per-PE arrays, kept for bit-exact comparison and the
    load-balance views).
    """

    backend: str
    scenario: Scenario
    stats: AccessStats
    metrics: dict[str, float] = field(default_factory=dict)
    per_pe: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def config(self) -> MachineConfig:
        return self.scenario.config

    @property
    def remote_read_pct(self) -> float:
        return self.stats.remote_read_pct

    @property
    def cached_read_pct(self) -> float:
        return self.stats.cached_read_pct

    def summary(self) -> dict[str, float]:
        """Flat scalar view: access-category summary + backend metrics."""
        out = self.stats.summary()
        out.update(self.metrics)
        return out

    def identical(self, other: "EvalOutcome") -> bool:
        """Bit-exact comparison of every counter, metric and array."""
        return (
            self.backend == other.backend
            and self.scenario == other.scenario
            and self.stats.array_names == other.stats.array_names
            and np.array_equal(self.stats.counts, other.stats.counts)
            and np.array_equal(self.stats.by_array, other.stats.by_array)
            and self.metrics == other.metrics
            and set(self.per_pe) == set(other.per_pe)
            and all(
                np.array_equal(self.per_pe[name], other.per_pe[name])
                for name in self.per_pe
            )
        )

    def __repr__(self) -> str:
        return f"EvalOutcome({self.scenario.label()}: {self.stats!r})"


# ---------------------------------------------------------------------------
# the backend protocol and registry
# ---------------------------------------------------------------------------


@runtime_checkable
class EvalBackend(Protocol):
    """What the engine requires of an evaluation backend.

    ``scenario_axes`` names the campaign axes (beyond the machine
    configuration grid) the backend consumes — the spec validator
    rejects sweeps along axes a backend would silently ignore.
    ``result_schema`` names the scalar metric columns every outcome's
    ``metrics`` dict carries; ``table_metrics`` is the subset worth a
    column in the CLI's record tables.

    Two optional extensions refine the engine's behaviour:

    * ``supported_reductions`` — a tuple of reduction-strategy names,
      declared when the backend wants strategy-level validation (both
      built-in evaluators now model ``"host"`` and ``"subrange"``);
      campaign specs sweeping an undeclared strategy are rejected at
      construction instead of mid-run, and ``evaluate`` raises
      :class:`UnsupportedScenarioError` for hand-built scenarios that
      bypass the validator (full matrix in ``docs/backends.md``);
    * ``dispatch_jobs(jobs, traces, touch, trace_paths)`` — declared
      by *dispatching* backends (the shared evaluation service): the
      campaign executor hands such a backend its whole job list to
      keep in flight at once, instead of forking a worker pool around
      per-point ``evaluate`` calls.
    """

    name: str
    scenario_axes: tuple[str, ...]
    result_schema: tuple[str, ...]
    table_metrics: tuple[str, ...]

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        """Evaluate one trace under one scenario (pure, deterministic)."""
        ...


_REGISTRY: dict[str, EvalBackend] = {}


def register_backend(backend: EvalBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry (``replace=True`` to override)."""
    if not replace and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> EvalBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def cache_identity_of(name: str) -> str:
    """The namespace a backend's results are cached/claimed under.

    Usually the backend name itself; a dispatching backend refines it
    (the service reports ``"service:<delegate>"`` so cached physics
    never survives a delegate switch).  Unregistered names fall back
    to themselves, keeping keys computable for results that outlive
    their backend registration.  The single definition both
    :meth:`repro.engine.store.ResultKey.make` and the campaign
    stream's identity-drift guard resolve through — they must always
    agree.
    """
    try:
        backend = get_backend(name)
    except KeyError:
        return name
    return getattr(backend, "cache_identity", name)


# ---------------------------------------------------------------------------
# the one evaluation path
# ---------------------------------------------------------------------------

_evaluations = 0


def evaluation_count() -> int:
    """How many backend evaluations this campaign surface has performed.

    The evaluation-side mirror of
    :func:`repro.engine.store.interpretation_count`: every engine
    evaluation funnels through :func:`evaluate_scenario`, so a campaign
    replayed entirely from the result cache keeps this counter flat.
    The counter itself is per-process, but evaluations a parallel
    campaign runs inside pool workers are *merged back* on campaign
    completion — each worker logs its evaluations to a write-ahead
    touch file and the campaign parent folds the total in through
    :func:`record_evaluations` — so after a campaign finishes (stream
    drained) the count covers worker-side evaluations too.
    """
    return _evaluations


def record_evaluations(n: int) -> None:
    """Merge evaluations performed outside this process into the count.

    The campaign executor calls this when it folds pool workers'
    write-ahead touch files back in: each worker counted its own
    :func:`evaluate_scenario` calls in its own process, and this is
    how those land in the parent's :func:`evaluation_count` instead of
    being lost with the pool.
    """
    global _evaluations
    _evaluations += int(n)


def evaluate_scenario(trace: Trace, scenario: Scenario) -> EvalOutcome:
    """Dispatch one evaluation through the registry (counted)."""
    global _evaluations
    _evaluations += 1
    return get_backend(scenario.backend).evaluate(trace, scenario)
