"""The shared evaluation service: one resident pool, many campaigns.

Every parallel campaign used to fork its own worker pool, pay its own
startup cost, and tear it down at the end — N concurrent campaigns
meant N pools fighting over the same cores.  This module hosts a
single long-lived :class:`EvalService` per process, modelled on a
tracing-JIT dispatch loop: one resident executor, many short-lived
requests.  Campaigns (and one-off ``evaluate_scenario`` calls) submit
jobs into a *bounded* queue; a small set of asyncio dispatchers drains
it into one shared process pool that outlives any individual campaign.

Admission is bounded globally (``queue_size``) and optionally by
distinct campaign (``max_campaigns``); *dispatch* order round-robins
across campaigns (:class:`_FairQueue`), so a 10⁵-point grid that
arrived first cannot starve a one-job ``evaluate_scenario`` call — or
a rival fleet campaign — behind its whole backlog.

Submissions that carry a ``result_key`` (plus the ``store`` it lives
in) are *store-coordinated inside submit*: the service looks the
result up, takes the cross-process claim lease before dispatching,
publishes the outcome on completion, and abandons the claim on
failure.  Bare ``evaluate_scenario`` callers therefore coordinate
through the same lease machinery campaigns use — two processes (or
two fleet hosts) evaluating the same trace/scenario pair against one
store root do the work exactly once while the first builder is alive.

What sharing buys:

* **workers** — the pool is created once (``pool_launches`` in
  :meth:`EvalService.stats` stays at 1 however many campaigns run) and
  its processes stay warm, so concurrent campaigns interleave on one
  set of cores instead of oversubscribing them with rival pools;
* **traces** — store-backed jobs ship only the trace's ``.npz`` path;
  each worker loads it once and memoises it, so ten campaigns over the
  same kernel share one in-worker copy instead of pickling the trace
  into ten pools;
* **results** — in-flight deduplication: two submissions of the same
  ``(trace, scenario)`` point share one future and one evaluation
  (``shared`` in the stats), on top of the store's claim/lease
  machinery.

The service is exposed as a third registered backend,
``backend="service"`` (:class:`ServiceBackend`): its ``evaluate``
round-trips one job through the queue, and the campaign executor
recognises it and submits whole job lists asynchronously instead of
forking a pool.  The actual simulation semantics come from a
*delegate* backend — ``"untimed"`` by default, configurable through
:func:`configure_service` — so the service adds scheduling, never a
third set of physics.

Degradation mirrors the campaign executor: when worker processes
cannot be created or break (restricted sandboxes; stdin/REPL-driven
``__main__`` modules that forkserver/spawn workers cannot re-import),
jobs run inline on the service thread — slower, bit-identical, and
the bounded queue still provides admission control.  The pool
deliberately never uses ``fork``: it launches lazily from a process
that is multi-threaded by construction, where a forked child could
inherit a held lock.
"""

from __future__ import annotations

import asyncio
import atexit
import collections
import concurrent.futures
import contextlib
import multiprocessing as mp
import os
import threading
import time
import warnings
from dataclasses import replace
from typing import Iterator, Mapping, Sequence

from .. import obs
from ..ir.trace import Trace
from .base import (
    EvalOutcome,
    Scenario,
    get_backend,
    record_evaluations,
    register_backend,
)

__all__ = [
    "DEFAULT_QUEUE_SIZE",
    "EvalService",
    "ServiceBackend",
    "ServiceSaturatedError",
    "TraceUnavailableError",
    "configure_service",
    "get_service",
    "shutdown_service",
]

#: Default bound on the service's admission queue: submissions beyond
#: this block in the submitter until a dispatcher frees a slot.
DEFAULT_QUEUE_SIZE = 128

#: How long a store-coordinated submission defers to a live foreign
#: claim holder before computing unclaimed (benign duplicate, atomic
#: replace) — mirrors the store's own in-flight timeout.
_CLAIM_DEFER_S = 120.0

#: One-release deprecation shim: pre-obs ``stats()`` keys -> canonical.
_SERVICE_STATS_ALIASES: dict[str, str] = {
    "submitted": "submitted_total",
    "completed": "completed_total",
    "failed": "failed_total",
    "shared": "shared_total",
    "pool_launches": "pool_launches_total",
}


class TraceUnavailableError(RuntimeError):
    """A worker could not load a job's trace from its shipped path.

    The submitter falls back to re-submitting the job with the trace
    object shipped inline (it holds the trace in memory; only the
    cheap path-based hand-off failed — e.g. the entry was evicted
    between planning and execution).
    """


class ServiceSaturatedError(RuntimeError):
    """Admission control refused a submission.

    Raised when the service's ``max_campaigns`` bound is set and a
    submission would open one queue bucket too many.  The caller —
    typically the fleet server — should back off and retry, or refuse
    its own client upstream; jobs of already-admitted campaigns are
    unaffected.
    """


class _FairQueue:
    """Bounded multi-campaign queue with round-robin dispatch order.

    Admission stays global — ``maxsize`` jobs across all campaigns,
    matching the old single ``asyncio.Queue`` semantics — but each
    campaign queues into its own bucket and :meth:`get` serves the
    buckets round-robin, one job at a time.  A grid that arrived
    first no longer starves later arrivals behind its whole backlog;
    with K campaigns queued, each is served every K-th dispatch.

    Runs entirely on the service's event loop thread (asyncio
    primitives, no locks).  ``max_campaigns`` is the optional
    admission bound on *distinct queued campaigns*: opening one bucket
    beyond it raises :class:`ServiceSaturatedError` to the submitter.
    """

    def __init__(self, maxsize: int, max_campaigns: int | None = None):
        self._maxsize = maxsize
        self._max_campaigns = max_campaigns
        self._size = 0
        self._buckets: dict[str, collections.deque] = {}
        self._rotation: collections.deque[str] = collections.deque()
        self._cond = asyncio.Condition()

    def qsize(self) -> int:
        return self._size

    def campaigns(self) -> int:
        """Distinct campaigns currently queued (snapshot)."""
        return len(self._buckets)

    def task_done(self) -> None:
        """Compatibility no-op (completion is tracked per future)."""

    async def put(self, campaign: str, item) -> None:
        async with self._cond:
            while self._size >= self._maxsize:
                await self._cond.wait()
            bucket = self._buckets.get(campaign)
            if bucket is None:
                if (
                    self._max_campaigns is not None
                    and len(self._buckets) >= self._max_campaigns
                ):
                    raise ServiceSaturatedError(
                        f"admission refused: {len(self._buckets)} campaigns "
                        f"already queued (max_campaigns="
                        f"{self._max_campaigns})"
                    )
                bucket = self._buckets[campaign] = collections.deque()
                self._rotation.append(campaign)
            bucket.append(item)
            self._size += 1
            self._cond.notify_all()

    async def get(self):
        async with self._cond:
            while self._size == 0:
                await self._cond.wait()
            # Invariant: every rotation entry has a non-empty bucket
            # (drained buckets are retired immediately below).
            campaign = self._rotation.popleft()
            bucket = self._buckets[campaign]
            item = bucket.popleft()
            if bucket:
                self._rotation.append(campaign)
            else:
                del self._buckets[campaign]
            self._size -= 1
            self._cond.notify_all()
            return item


# ---------------------------------------------------------------------------
# the job payload and its worker-side entry point
# ---------------------------------------------------------------------------

#: (delegate, scenario, trace | None, trace_path, ref, touch, parent_pid,
#:  count_eval) — kept a plain tuple so the pickle shipped per job stays
#: minimal when the trace travels by path.
_Payload = tuple

#: Worker-side memo of traces loaded by path; bounded so a worker that
#: serves many campaigns over many kernels cannot grow without limit.
_WORKER_TRACES: dict[str, Trace] = {}
_WORKER_TRACE_CAP = 32


def _load_worker_trace(path: str) -> Trace:
    trace = _WORKER_TRACES.get(path)
    if trace is not None:
        return trace
    try:
        trace = Trace.load(path)
    except Exception as exc:  # noqa: BLE001 - travels back to the submitter
        raise TraceUnavailableError(
            f"trace artifact unavailable at {path!r}: {exc}"
        ) from None
    if len(_WORKER_TRACES) >= _WORKER_TRACE_CAP:
        _WORKER_TRACES.pop(next(iter(_WORKER_TRACES)))
    _WORKER_TRACES[path] = trace
    return trace


def _run_job(payload: _Payload) -> EvalOutcome:
    """Evaluate one service job (runs in a pool worker, or inline).

    The delegate backend does the physics; the outcome is re-tagged
    ``backend="service"`` so records and result-cache entries carry
    the identity the scenario was addressed under.  Evaluation
    counting follows the campaign executor's write-ahead convention:
    the executing process counts the evaluation, and a worker-side
    count additionally rides home on the touch record (``evals=1``)
    for the campaign parent to merge — unless the submitter already
    counted the dispatch (``count_eval=False``, the
    ``evaluate_scenario`` path).
    """
    (
        delegate,
        scenario,
        trace,
        trace_path,
        ref,
        touch,
        parent_pid,
        count_eval,
    ) = payload
    if trace is None:
        trace = _load_worker_trace(trace_path)
    # Pool workers inherit REPRO_OBS through the environment, so this
    # span lands in the worker's own per-process JSONL file.
    with obs.span("engine.evaluate", backend=delegate, ref=ref):
        outcome = get_backend(delegate).evaluate(trace, scenario)
    if outcome.backend != scenario.backend:
        outcome = replace(outcome, backend=scenario.backend)
    if count_eval:
        record_evaluations(1)
    if touch is not None and ref:
        from ..engine.store import append_touch

        touch_dir, tag = touch
        in_parent = os.getpid() == parent_pid
        append_touch(
            touch_dir, tag, ref, evals=0 if (in_parent or not count_eval) else 1
        )
    return outcome


# ---------------------------------------------------------------------------
# the resident service
# ---------------------------------------------------------------------------


class EvalService:
    """A long-lived asyncio evaluation loop over one shared pool.

    ``workers`` is the resident pool's size (``None``: one per core;
    ``0``: no pool — jobs run inline on the service thread, the
    sandbox/degraded mode).  ``queue_size`` bounds the admission
    queue: :meth:`submit` blocks once that many jobs are in flight,
    which is what keeps a burst of campaigns from buffering their
    entire grids in memory.  ``max_campaigns`` optionally bounds the
    number of *distinct* campaigns queued at once (further admission
    raises :class:`ServiceSaturatedError` — the fleet server's
    refuse-upstream signal).  ``delegate`` names the backend that
    actually evaluates each job.  Queued jobs dispatch round-robin
    across campaigns, not strictly FIFO.

    Thread-safe: any number of campaign threads may submit
    concurrently; all coordination lives on the service's own event
    loop.  Fork-unsafe by construction (the loop thread does not
    survive into a forked child) — :func:`get_service` detects a pid
    change and builds a fresh instance instead of deadlocking.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        delegate: str = "untimed",
        max_campaigns: int | None = None,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if max_campaigns is not None and max_campaigns < 1:
            raise ValueError("max_campaigns must be at least 1")
        _validate_delegate(delegate)
        from ..engine.executor import default_workers

        self.workers = default_workers() if workers is None else workers
        self.queue_size = queue_size
        self.delegate = delegate
        self.max_campaigns = max_campaigns
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._closed = False
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._pool_broken = False
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "shared": 0,
            "queue_high_water": 0,
            "pool_launches": 0,
            "store_hits": 0,
        }
        #: in-flight dedup: (trace identity, scenario digest) -> future
        self._inflight: dict[tuple[str, str], concurrent.futures.Future] = {}
        self._ready = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._queue: _FairQueue | None = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-eval-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()

    # -- the loop --------------------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._queue = _FairQueue(self.queue_size, self.max_campaigns)
        for slot in range(max(self.workers, 1)):
            self._loop.create_task(self._dispatch())
        self._loop.call_soon(self._ready.set)
        try:
            self._loop.run_forever()
        finally:
            # Drain: cancel the dispatchers and let them unwind before
            # closing, so interpreter shutdown sees no pending tasks.
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.close()

    async def _enqueue(self, campaign: str, item) -> None:
        queue = self._queue
        assert queue is not None
        await queue.put(campaign, item)
        high_water = None
        with self._lock:
            if queue.qsize() > self._stats["queue_high_water"]:
                self._stats["queue_high_water"] = queue.qsize()
                high_water = queue.qsize()
        if high_water is not None:
            obs.emit("service.queue_high_water", value=high_water)

    async def _dispatch(self) -> None:
        """One dispatcher: drain the queue into the shared pool."""
        queue = self._queue
        assert queue is not None
        while True:
            payload, future = await queue.get()
            try:
                try:
                    if not future.set_running_or_notify_cancel():
                        continue
                except Exception:
                    # Already resolved — a failed submission closed it
                    # out while the job sat queued.  Skip, never die.
                    continue
                try:
                    outcome = await self._execute(payload)
                except asyncio.CancelledError:
                    # Shutdown: the drain in _run_loop cancelled us.
                    # Swallowing this would resurrect the dispatcher
                    # (and close() would hang on the join) — resolve
                    # the job's future and let the cancellation out.
                    if not future.done():
                        with contextlib.suppress(Exception):
                            future.set_exception(
                                RuntimeError("evaluation service closed")
                            )
                    raise
                except BaseException as exc:  # noqa: BLE001 - handed to caller
                    with self._lock:
                        self._stats["failed"] += 1
                    if not future.done():
                        with contextlib.suppress(Exception):
                            future.set_exception(exc)
                else:
                    with self._lock:
                        self._stats["completed"] += 1
                    if not future.done():
                        with contextlib.suppress(Exception):
                            future.set_result(outcome)
            finally:
                queue.task_done()

    async def _execute(self, payload: _Payload) -> EvalOutcome:
        if self._closed:
            # A closed service must not evaluate its queued backlog
            # (let alone relaunch a pool for it) — fail the job to
            # its submitter instead.
            raise RuntimeError("evaluation service closed")
        pool = self._ensure_pool()
        if pool is None:
            return _run_job(payload)
        try:
            return await self._loop.run_in_executor(pool, _run_job, payload)
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died under the job (OOM-killed, sandbox): the
            # pool is unusable — degrade to inline like the campaign
            # executor's serial fallback and keep serving.
            with self._lock:
                self._pool = None
                self._pool_broken = True
            warnings.warn(
                "evaluation service worker pool broke; "
                "continuing inline on the service thread",
                RuntimeWarning,
                stacklevel=2,
            )
            return _run_job(payload)

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor | None:
        """The shared pool, created at most once (None: inline mode)."""
        if self.workers == 0 or self._pool_broken or self._closed:
            return None
        with self._lock:
            if self._closed:
                return None  # never relaunch a pool after close()
            if self._pool is not None:
                return self._pool
            # Never fork: by the time the pool launches (lazily, from
            # the loop thread at first submit) this process is
            # multi-threaded by construction — campaign threads, the
            # lease heartbeat, this loop — and a fork could snapshot
            # a held lock into every worker.  Workers receive jobs by
            # pickle (traces travel by path), so the resident pool
            # loses nothing by starting from a clean interpreter:
            # forkserver where available, spawn otherwise — a one-off
            # startup cost the pool's lifetime amortises.
            methods = mp.get_all_start_methods()
            context = mp.get_context(
                "forkserver" if "forkserver" in methods else "spawn"
            )
            try:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            except (OSError, NotImplementedError, ValueError) as exc:
                self._pool_broken = True
                warnings.warn(
                    f"evaluation service pool unavailable ({exc}); "
                    "running jobs inline",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            self._stats["pool_launches"] += 1
            return self._pool

    # -- submission ------------------------------------------------------------
    def submit(
        self,
        trace: Trace | None,
        scenario: Scenario,
        *,
        trace_path: str | None = None,
        ref: str = "",
        touch: tuple[str, str] | None = None,
        count_eval: bool = False,
        campaign: str | None = None,
        result_key=None,
        store=None,
    ) -> concurrent.futures.Future:
        """Queue one evaluation; returns its future.

        Blocks only for *admission* (while the bounded queue is full),
        never for execution.  ``trace_path`` ships the trace by its
        store artifact path instead of pickling it per job; ``ref`` and
        ``touch`` carry the write-ahead accounting of campaign jobs;
        ``count_eval=False`` marks dispatches the caller already
        counted (the ``evaluate_scenario`` path).  ``campaign`` names
        the fairness bucket the job queues under (anonymous
        submissions share one).  Identical in-flight submissions (same
        trace identity and scenario digest) share one future and one
        evaluation.

        ``result_key``/``store`` (a :class:`~repro.engine.store.ResultKey`
        and the :class:`~repro.engine.store.TraceStore` it addresses)
        make the submission *store-coordinated*: a cached outcome
        resolves the future immediately, otherwise the service takes
        the cross-process claim lease before dispatching and publishes
        (or abandons) it when the job settles — so bare
        ``evaluate_scenario`` callers in different processes build
        each point exactly once.
        """
        if trace is None and trace_path is None:
            raise ValueError("submit needs a trace or a trace_path")
        if self._closed or not self._thread.is_alive():
            raise RuntimeError("evaluation service is closed")
        identity = (
            ref
            or (result_key.ref if result_key is not None else "")
            or trace_path
            or f"mem:{id(trace)}"
        )
        key = (identity, scenario.digest)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._stats["shared"] += 1
            else:
                future = concurrent.futures.Future()
                self._inflight[key] = future
                self._stats["submitted"] += 1
        if existing is not None:
            obs.emit(
                "service.submit",
                ref=identity,
                scenario=scenario.digest[:8],
                shared=True,
            )
            return existing
        obs.emit(
            "service.submit",
            ref=identity,
            scenario=scenario.digest[:8],
            shared=False,
        )
        future.add_done_callback(lambda _f: self._forget(key))
        payload: _Payload = (
            self.delegate,
            scenario,
            None if trace_path is not None else trace,
            trace_path,
            ref,
            touch,
            self._pid,
            count_eval,
        )
        try:
            if result_key is not None and store is not None:
                hit, claimed = self._coordinate_store(result_key, store)
                if hit is not None:
                    with self._lock:
                        self._stats["store_hits"] += 1
                    future.set_result(hit)
                    return future
                future.add_done_callback(
                    self._settle_claim(result_key, store, claimed)
                )
            admission = asyncio.run_coroutine_threadsafe(
                self._enqueue(campaign or "adhoc", (payload, future)),
                self._loop,
            )
            # Backpressure: block while the queue is full — but poll
            # the service's liveness, because a concurrent close()
            # (reconfiguration) can stop the loop after the check
            # above, leaving the admission future permanently
            # unresolved.
            while True:
                try:
                    admission.result(timeout=0.5)
                    break
                except concurrent.futures.TimeoutError:
                    if self._closed or not self._thread.is_alive():
                        admission.cancel()
                        raise RuntimeError(
                            "evaluation service is closed"
                        ) from None
        except BaseException as exc:
            self._forget(key)
            # Another campaign may already share this future through
            # the dedup map — resolve it, or that sharer waits on a
            # future nobody will ever complete (close()'s pending
            # sweep cannot see it once it is forgotten).
            if not future.done():
                with contextlib.suppress(Exception):
                    future.set_exception(
                        RuntimeError(
                            f"evaluation service submission failed: {exc}"
                        )
                    )
            raise
        return future

    def _forget(self, key: tuple[str, str]) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    # -- store coordination ----------------------------------------------------
    def _coordinate_store(self, result_key, store):
        """Resolve a store-coordinated submission up front.

        Returns ``(hit, claimed)``: a cached outcome (and the job is
        never dispatched), or ``(None, True)`` once this process holds
        the claim lease, or ``(None, False)`` after deferring
        :data:`_CLAIM_DEFER_S` to a wedged foreign holder — then the
        job computes unclaimed, a benign duplicate that publishes by
        atomic replace.  Runs in the *submitter's* thread: blocking
        here is the same admission backpressure a full queue applies.
        """
        deadline = time.monotonic() + _CLAIM_DEFER_S
        while True:
            outcome = store.lookup_result(result_key)
            if outcome is not None:
                obs.emit("service.store_hit", ref=result_key.ref)
                return outcome, False
            gate = store.claim_result(result_key)
            if gate is None:
                obs.emit("service.claim", ref=result_key.ref)
                return None, True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                obs.emit("service.claim_defer_expired", ref=result_key.ref)
                return None, False
            gate.wait(timeout=min(5.0, max(0.05, remaining)))

    def _settle_claim(self, result_key, store, claimed: bool):
        """Done-callback publishing a store-coordinated job's outcome.

        Success publishes through :meth:`TraceStore.put_result` (which
        also releases our claim lease); failure abandons the claim so
        waiters elsewhere stop deferring to a job that will never
        publish.  Never raises — a done-callback exception would
        poison the future's other callbacks.
        """

        def settle(future: concurrent.futures.Future) -> None:
            try:
                outcome = future.result()
            except BaseException:  # noqa: BLE001 - job failure, not ours
                if claimed:
                    with contextlib.suppress(Exception):
                        store.abandon_result_claim(result_key)
                return
            try:
                store.put_result(result_key, outcome)
            except Exception:
                if claimed:
                    with contextlib.suppress(Exception):
                        store.abandon_result_claim(result_key)

        return settle

    # -- observability ---------------------------------------------------------
    @property
    def mode(self) -> str:
        """How jobs execute: ``pool[N]``, ``inline``, or ``cold``."""
        if self.workers == 0 or self._pool_broken:
            return "inline"
        if self._pool is None:
            return "cold"  # pool not launched yet (no job has run)
        return f"pool[{self.workers}]"

    def stats_registry(self) -> "obs.MetricsRegistry":
        """The service's lifetime counters and gauges as a registry."""
        with self._lock:
            raw = dict(self._stats)
            in_flight = len(self._inflight)
        queue = self._queue
        queue_campaigns = queue.campaigns() if queue is not None else 0
        registry = obs.MetricsRegistry()
        registry.label("delegate", self.delegate)
        registry.label("mode", self.mode)
        for name, help in (
            ("submitted", "jobs admitted to the queue"),
            ("completed", "jobs finished successfully"),
            ("failed", "jobs that raised"),
            ("shared", "submissions served by an in-flight duplicate"),
            ("pool_launches", "resident pool launches"),
            ("store_hits", "submissions resolved from the result store"),
        ):
            registry.counter(name, help).inc(raw[name])
        registry.gauge(
            "queue_high_water", "deepest the admission queue has been"
        ).set(raw["queue_high_water"])
        registry.gauge("in_flight", "deduplicated jobs in flight").set(
            in_flight
        )
        registry.gauge("workers", "resident pool size").set(self.workers)
        registry.gauge("queue_size", "admission queue bound").set(
            self.queue_size
        )
        registry.gauge(
            "queue_campaigns", "distinct campaigns currently queued"
        ).set(queue_campaigns)
        return registry

    def stats(self) -> dict[str, object]:
        """Canonical snake_case snapshot (counters suffixed ``_total``).

        The pre-obs unsuffixed counter keys still resolve for one
        release via the deprecation shim.
        """
        return obs.LegacySnapshot(
            self.stats_registry().snapshot(), _SERVICE_STATS_ALIASES
        )

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Stop the loop and the pool (idempotent; pending jobs fail)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            pending = list(self._inflight.values())
            self._inflight.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("evaluation service closed")
                )

    def __repr__(self) -> str:
        return (
            f"EvalService(workers={self.workers}, "
            f"queue_size={self.queue_size}, delegate={self.delegate!r}, "
            f"mode={self.mode!r})"
        )


# ---------------------------------------------------------------------------
# the per-process instance
# ---------------------------------------------------------------------------

_service: EvalService | None = None
_service_lock = threading.Lock()
_config: dict[str, object] = {
    "workers": None,
    "queue_size": DEFAULT_QUEUE_SIZE,
    "delegate": "untimed",
    "max_campaigns": None,
}


def _validate_delegate(name: str) -> None:
    if name == ServiceBackend.name:
        raise ValueError("the service cannot delegate to itself")
    backend = get_backend(name)  # KeyError on typos
    if hasattr(backend, "dispatch_jobs"):
        raise ValueError(f"backend {name!r} is itself a dispatching service")


def configure_service(
    *,
    workers: int | None = None,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    delegate: str = "untimed",
    max_campaigns: int | None = None,
) -> None:
    """Set the shared service's parameters (tears down a live one).

    Takes effect on the next :func:`get_service` call — existing
    submissions complete against the old instance first if callers
    hold their futures, but new work sees the new configuration.
    """
    _validate_delegate(delegate)
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    if queue_size < 1:
        raise ValueError("queue_size must be at least 1")
    if max_campaigns is not None and max_campaigns < 1:
        raise ValueError("max_campaigns must be at least 1")
    global _service
    with _service_lock:
        _config.update(
            workers=workers,
            queue_size=queue_size,
            delegate=delegate,
            max_campaigns=max_campaigns,
        )
        service, _service = _service, None
    if service is not None:
        service.close()


def get_service() -> EvalService:
    """The process-wide service, created lazily from the current config.

    A pid change (this process is a fork of the one that built the
    service) discards the inherited instance — its loop thread did not
    survive the fork — and builds a fresh one.
    """
    global _service
    with _service_lock:
        if _service is not None and _service._pid != os.getpid():
            _service = None  # forked copy: thread/loop are not ours
        if _service is None:
            _service = EvalService(
                workers=_config["workers"],  # type: ignore[arg-type]
                queue_size=_config["queue_size"],  # type: ignore[arg-type]
                delegate=_config["delegate"],  # type: ignore[arg-type]
                max_campaigns=_config["max_campaigns"],  # type: ignore[arg-type]
            )
        return _service


def shutdown_service() -> None:
    """Close and forget the shared service (next use recreates it)."""
    global _service
    with _service_lock:
        service, _service = _service, None
    if service is not None and service._pid == os.getpid():
        service.close()


atexit.register(shutdown_service)


# ---------------------------------------------------------------------------
# the backend facade
# ---------------------------------------------------------------------------


class ServiceBackend:
    """Backend ``"service"``: evaluations via the shared resident pool.

    A scheduling facade, not a third simulator: every job is evaluated
    by the configured *delegate* backend (``"untimed"`` by default —
    see :func:`configure_service`), so the service's scenario axes,
    result schema and reduction support are exactly the delegate's,
    and campaign-spec validation stays accurate whichever delegate is
    active.  ``evaluate`` round-trips a single job; the campaign
    executor instead calls :meth:`dispatch_jobs` to keep a whole grid
    in flight against the shared pool at once.
    """

    name = "service"

    @property
    def delegate(self) -> str:
        with _service_lock:
            service = _service
        return service.delegate if service is not None else str(_config["delegate"])

    @property
    def cache_identity(self) -> str:
        """The name service results are cached under: delegate included.

        A service outcome's physics comes from the delegate, so cached
        entries must not survive a delegate switch — ``service:timed``
        and ``service:untimed`` are distinct cache namespaces, exactly
        as ``timed`` and ``untimed`` are.
        """
        return f"{self.name}:{self.delegate}"

    def _delegate_backend(self):
        return get_backend(self.delegate)

    @property
    def scenario_axes(self) -> tuple[str, ...]:
        return self._delegate_backend().scenario_axes

    @property
    def result_schema(self) -> tuple[str, ...]:
        return self._delegate_backend().result_schema

    @property
    def table_metrics(self) -> tuple[str, ...]:
        return self._delegate_backend().table_metrics

    @property
    def supported_reductions(self) -> tuple[str, ...] | None:
        return getattr(self._delegate_backend(), "supported_reductions", None)

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        """One synchronous round-trip through the shared queue.

        Store-coordinated: the submission carries this point's
        :class:`~repro.engine.store.ResultKey` (content digest of the
        in-memory trace — no store registration required), so repeat
        evaluations are cache hits and concurrent processes on one
        store root serialise through the claim lease instead of
        duplicating the build.
        """
        from ..engine.store import ResultKey, default_store

        key = ResultKey(
            trace_digest=trace.content_digest,
            scenario_digest=scenario.digest,
            backend=self.cache_identity,
        )
        return (
            get_service()
            .submit(trace, scenario, result_key=key, store=default_store())
            .result()
        )

    def dispatch_label(self) -> str:
        service = get_service()
        return (
            "service[serial]"
            if service.mode == "inline"
            else f"service[{service.workers}]"
        )

    def dispatch_jobs(
        self,
        jobs: Sequence[tuple[int, str, str, Scenario]],
        traces: Mapping[str, Trace],
        touch: tuple[str, str] | None,
        trace_paths: Mapping[str, str] | None = None,
    ) -> Iterator[tuple[int, EvalOutcome, float]]:
        """Submit a campaign's job list; yield outcomes as they finish.

        Store-backed traces travel by artifact path (each shared
        worker loads and memoises them once); a worker that finds a
        path unavailable — evicted between planning and execution —
        triggers one resubmission with the trace shipped inline from
        the submitter's memory.  Deduplicated submissions (another
        in-flight campaign already queued the identical point) resolve
        through the shared future, so every yielded index still gets
        its outcome.
        """
        import queue as queue_module

        service = get_service()
        trace_paths = trace_paths or {}
        # Fairness bucket: the campaign's touch tag is its identity for
        # round-robin dispatch (anonymous grids share one bucket).
        campaign = touch[1] if touch is not None else None
        # Completion is collected through one done-callback per future
        # feeding a queue — O(jobs) bookkeeping total, where repeated
        # `concurrent.futures.wait` calls would re-register a waiter
        # on every still-pending future per wake-up (quadratic churn
        # on big grids).
        completed: queue_module.Queue = queue_module.Queue()
        entries_for: dict[concurrent.futures.Future, list] = {}
        outstanding: set[concurrent.futures.Future] = set()
        #: submission time per future — the yielded wall seconds are
        #: submit-to-completion (queue wait included: that *is* where
        #: a service job's wall-clock goes under contention)
        submitted_at: dict[concurrent.futures.Future, float] = {}

        def track(future: concurrent.futures.Future, entry) -> None:
            entries_for.setdefault(future, []).append(entry)
            submitted_at.setdefault(future, time.perf_counter())
            if future not in outstanding:
                outstanding.add(future)
                future.add_done_callback(completed.put)

        try:
            for index, label, ref, scenario in jobs:
                path = trace_paths.get(label)
                track(
                    service.submit(
                        traces[label] if path is None else None,
                        scenario,
                        trace_path=path,
                        ref=ref,
                        touch=touch,
                        count_eval=True,
                        campaign=campaign,
                    ),
                    (index, label, ref, scenario),
                )
            while entries_for:
                future = completed.get()
                outstanding.discard(future)
                entries = entries_for.pop(future, None)
                if entries is None:
                    continue  # a resubmitted future's first completion
                try:
                    outcome = future.result()
                except TraceUnavailableError:
                    for index, label, ref, scenario in entries:
                        track(
                            service.submit(
                                traces[label],
                                scenario,
                                ref=ref,
                                touch=touch,
                                count_eval=True,
                                campaign=campaign,
                            ),
                            (index, label, ref, scenario),
                        )
                    continue
                wall = time.perf_counter() - submitted_at.get(
                    future, time.perf_counter()
                )
                for index, _label, _ref, _scenario in entries:
                    yield index, outcome, wall
        finally:
            # An abandoned or errored stream cannot cancel jobs the
            # resident pool already accepted — but it must not return
            # while they are still appending this campaign's touch
            # files (the stream merges them right after closing us).
            # Drain, bounded: stragglers past the timeout fall to the
            # stale-file sweep of `repro store stats`.
            if outstanding:
                concurrent.futures.wait(list(outstanding), timeout=60.0)


register_backend(ServiceBackend())
