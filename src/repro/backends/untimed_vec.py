"""The columnar untimed simulator as an evaluation backend.

``"untimed-vec"`` answers exactly the questions ``"untimed"`` answers
— same scenario knobs consumed (the machine configuration alone), same
access-category counters, same per-PE fetch vectors — but replays the
trace through :func:`repro.core.vec_simulator.simulate_vec`.  The two
backends are held bit-identical by the generative differential harness
in ``tests/test_vec_fidelity.py``; only the ``vec_fallback_pes``
metric (how many PE cache walks needed the scalar fallback) and the
profile phase names distinguish their outcomes.  LRU and FIFO walks
both solve in closed form — ``docs/fastpaths.md`` maps exactly which
(policy, capacity, warmth) cells replay columnar and which fall back.

Scenario knobs the columnar engine cannot batch raise
:class:`~repro.backends.base.UnsupportedScenarioError` up front — an
unknown cache policy would otherwise only surface as a ``KeyError``
deep inside the walk, and an unknown reduction strategy (smuggled past
the config validator by a hand-built scenario) must name the backend
that refused it, exactly as the timed backend does.
"""

from __future__ import annotations

from ..cache import POLICIES
from ..core.superop_replay import replay_superops
from ..core.vec_simulator import simulate_vec
from ..ir.trace import Trace
from ..obs import profile
from .base import (
    EvalOutcome,
    Scenario,
    UnsupportedScenarioError,
    register_backend,
)

__all__ = ["UntimedVecBackend"]


class UntimedVecBackend:
    """Backend ``"untimed-vec"``: columnar replay, scalar-identical."""

    name = "untimed-vec"
    scenario_axes: tuple[str, ...] = ()
    #: Same strategies the scalar engine models; the subrange combine
    #: is charged through the scalar engine's own shared routine, so
    #: the strategies can never drift apart.
    supported_reductions: tuple[str, ...] = ("host", "subrange")
    result_schema: tuple[str, ...] = (
        "page_fetches",
        "distinct_pages_fetched",
        "vec_fallback_pes",
    )
    table_metrics: tuple[str, ...] = ("page_fetches",)

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        config = scenario.config
        if config.reduction_strategy not in self.supported_reductions:
            raise UnsupportedScenarioError(
                self.name,
                "reduction_strategy",
                config.reduction_strategy,
                supported=self.supported_reductions,
            )
        if config.has_cache and config.cache_policy not in POLICIES:
            raise UnsupportedScenarioError(
                self.name,
                "cache_policy",
                config.cache_policy,
                supported=tuple(POLICIES),
            )
        telemetry: dict[str, int] = {}
        superops = trace.attached_superops()

        def run():
            # A trace carrying a super-op view replays in O(unique
            # behaviour); the engine's own scalar fallback count flows
            # into the same vec_fallback_pes metric.
            if superops is not None and superops.ops:
                return replay_superops(superops, config, telemetry=telemetry)
            return simulate_vec(trace, config, telemetry)

        # Same REPRO_PROFILE opt-in (and bit-exactness caveat) as the
        # scalar untimed backend.
        phases: dict[str, float] = {}
        if profile.enabled():
            with profile.collect() as phases:
                result = run()
        else:
            result = run()
        metrics = {
            "page_fetches": float(result.page_fetches.sum()),
            "distinct_pages_fetched": float(
                result.distinct_pages_fetched.sum()
            ),
            "vec_fallback_pes": float(telemetry.get("fallback_pes", 0)),
        }
        for name, seconds in phases.items():
            metrics[f"profile_{name}_s"] = seconds
        return EvalOutcome(
            backend=self.name,
            scenario=scenario,
            stats=result.stats,
            metrics=metrics,
            per_pe={
                "page_fetches": result.page_fetches,
                "distinct_pages_fetched": result.distinct_pages_fetched,
            },
        )


register_backend(UntimedVecBackend())
