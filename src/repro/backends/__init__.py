"""repro.backends — one evaluation API, pluggable evaluators.

The system has two ways to evaluate a trace under a machine scenario:
the paper's untimed trace-driven simulator (§6-§7) and the timed
discrete-event machine it sketches as future work (§9) — plus a third,
*scheduling* backend that dispatches either of them through a shared
long-lived worker pool.  This package puts all of them — and any
backend a user registers — behind one contract:

* :class:`~repro.backends.base.Scenario` — the frozen identity of an
  evaluation point (machine configuration + topology, cost-model
  preset, execution mode), with canonical dict/JSON round-trip;
* :class:`~repro.backends.base.EvalBackend` — the protocol a backend
  implements: ``name``, ``evaluate(trace, scenario) -> EvalOutcome``,
  a ``result_schema`` of metric columns and the ``scenario_axes`` it
  consumes;
* :func:`~repro.backends.base.register_backend` /
  :func:`~repro.backends.base.get_backend` — the registry the engine
  dispatches through;
* :func:`~repro.backends.base.evaluate_scenario` — the single counted
  evaluation path (mirrors the trace store's interpretation counter).

Importing this package registers the four built-ins: ``"untimed"``
(:class:`~repro.backends.untimed.UntimedBackend`), ``"untimed-vec"``
(:class:`~repro.backends.untimed_vec.UntimedVecBackend` — the columnar
replay engine and the *default* backend, bit-identical to
``"untimed"`` and held to it by the generative fidelity harness),
``"timed"``
(:class:`~repro.backends.timed.TimedBackend`) and ``"service"``
(:class:`~repro.backends.service.ServiceBackend` — evaluations via the
process-wide :class:`~repro.backends.service.EvalService`, a resident
worker pool with a bounded queue that N concurrent campaigns share
instead of forking a pool each; configure with
:func:`~repro.backends.service.configure_service`).  The support
matrix — which backend consumes which scenario knob — is documented
in ``docs/backends.md``; unsupported combinations raise
:class:`~repro.backends.base.UnsupportedScenarioError`.

Quickstart::

    from repro.backends import Scenario, evaluate_scenario
    from repro.core import MachineConfig
    from repro.engine import kernel_trace_cached

    trace = kernel_trace_cached("iccg", n=512)
    scenario = Scenario(
        config=MachineConfig(n_pes=16, page_size=32),
        backend="timed",
        topology="mesh",          # alias of mesh2d
        mode="multithreaded",
    )
    outcome = evaluate_scenario(trace, scenario)
    print(outcome.metrics["speedup"], outcome.remote_read_pct)
"""

from .base import (
    COST_MODEL_PRESETS,
    MODES,
    EvalBackend,
    EvalOutcome,
    Scenario,
    UnsupportedScenarioError,
    backend_names,
    cost_model,
    cost_model_names,
    evaluate_scenario,
    evaluation_count,
    get_backend,
    record_evaluations,
    register_backend,
)
from .service import (
    EvalService,
    ServiceBackend,
    configure_service,
    get_service,
    shutdown_service,
)
from .timed import TimedBackend
from .untimed import UntimedBackend
from .untimed_vec import UntimedVecBackend

__all__ = [
    "COST_MODEL_PRESETS",
    "MODES",
    "EvalBackend",
    "EvalOutcome",
    "EvalService",
    "Scenario",
    "ServiceBackend",
    "TimedBackend",
    "UnsupportedScenarioError",
    "UntimedBackend",
    "UntimedVecBackend",
    "backend_names",
    "configure_service",
    "cost_model",
    "cost_model_names",
    "evaluate_scenario",
    "evaluation_count",
    "get_backend",
    "get_service",
    "record_evaluations",
    "register_backend",
    "shutdown_service",
]
