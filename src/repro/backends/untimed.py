"""The untimed trace-driven simulator as an evaluation backend (§6-§7).

A thin adapter: :func:`repro.core.simulator.simulate` already takes
(trace, config) and returns counters; this backend maps its
:class:`~repro.core.simulator.SimResult` onto the common
:class:`~repro.backends.base.EvalOutcome` shape.  It consumes no
scenario axes beyond the machine configuration — topology, mode and
cost model do not exist in the untimed model.

Traces that carry a super-op view (loaded from a v2 store shard, or
explicitly compacted) replay through
:func:`repro.core.superop_replay.replay_superops` instead: O(unique
behaviour) work, counters bit-identical to the flat walk.  Cold and
warm LRU ops and cold FIFO ops decide in closed form; the remaining
per-piece walks are enumerated in ``docs/fastpaths.md``.
"""

from __future__ import annotations

from ..core.simulator import simulate
from ..core.superop_replay import replay_superops
from ..ir.trace import Trace
from ..obs import profile
from .base import EvalOutcome, Scenario, register_backend

__all__ = ["UntimedBackend"]


class UntimedBackend:
    """Backend ``"untimed"``: the paper's measurement instrument."""

    name = "untimed"
    scenario_axes: tuple[str, ...] = ()
    result_schema: tuple[str, ...] = (
        "page_fetches",
        "distinct_pages_fetched",
    )
    table_metrics: tuple[str, ...] = ("page_fetches",)

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        # REPRO_PROFILE adds per-phase wall columns to the metrics.
        # Off by default: timings are machine-dependent, so including
        # them unconditionally would break the serial-vs-parallel
        # bit-exactness contract (and cached outcomes replay whatever
        # columns they were stored with).
        superops = trace.attached_superops()

        def run():
            if superops is not None and superops.ops:
                return replay_superops(superops, scenario.config)
            return simulate(trace, scenario.config)

        phases: dict[str, float] = {}
        if profile.enabled():
            with profile.collect() as phases:
                result = run()
        else:
            result = run()
        metrics = {
            "page_fetches": float(result.page_fetches.sum()),
            "distinct_pages_fetched": float(
                result.distinct_pages_fetched.sum()
            ),
        }
        for name, seconds in phases.items():
            metrics[f"profile_{name}_s"] = seconds
        return EvalOutcome(
            backend=self.name,
            scenario=scenario,
            stats=result.stats,
            metrics=metrics,
            per_pe={
                "page_fetches": result.page_fetches,
                "distinct_pages_fetched": result.distinct_pages_fetched,
            },
        )


register_backend(UntimedBackend())
