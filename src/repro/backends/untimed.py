"""The untimed trace-driven simulator as an evaluation backend (§6-§7).

A thin adapter: :func:`repro.core.simulator.simulate` already takes
(trace, config) and returns counters; this backend maps its
:class:`~repro.core.simulator.SimResult` onto the common
:class:`~repro.backends.base.EvalOutcome` shape.  It consumes no
scenario axes beyond the machine configuration — topology, mode and
cost model do not exist in the untimed model.
"""

from __future__ import annotations

from ..core.simulator import simulate
from ..ir.trace import Trace
from .base import EvalOutcome, Scenario, register_backend

__all__ = ["UntimedBackend"]


class UntimedBackend:
    """Backend ``"untimed"``: the paper's measurement instrument."""

    name = "untimed"
    scenario_axes: tuple[str, ...] = ()
    result_schema: tuple[str, ...] = (
        "page_fetches",
        "distinct_pages_fetched",
    )
    table_metrics: tuple[str, ...] = ("page_fetches",)

    def evaluate(self, trace: Trace, scenario: Scenario) -> EvalOutcome:
        result = simulate(trace, scenario.config)
        return EvalOutcome(
            backend=self.name,
            scenario=scenario,
            stats=result.stats,
            metrics={
                "page_fetches": float(result.page_fetches.sum()),
                "distinct_pages_fetched": float(
                    result.distinct_pages_fetched.sum()
                ),
            },
            per_pe={
                "page_fetches": result.page_fetches,
                "distinct_pages_fetched": result.distinct_pages_fetched,
            },
        )


register_backend(UntimedBackend())
