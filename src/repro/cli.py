"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                     # registered kernels
    python -m repro figure 1                 # regenerate Figure 1..5
    python -m repro tables                   # T1-T3
    python -m repro classify hydro_fragment  # one kernel's class
    python -m repro sweep iccg --pes 4 16 64 # custom sweep
    python -m repro advise hydro_2d          # §9 partitioning advisor
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main"]


def _cmd_list(_: argparse.Namespace) -> int:
    from .kernels import all_kernels

    print(f"{'name':<22} {'LFK#':>4}  {'paper class':<12} title")
    for kernel in all_kernels():
        paper = str(kernel.paper_class) if kernel.paper_class else "-"
        print(
            f"{kernel.name:<22} {kernel.number or '-':>4}  {paper:<12} "
            f"{kernel.title}"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .bench import figure1, figure2, figure3, figure4, figure5, render

    generators = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}
    numbers = args.numbers or sorted(generators)
    for number in numbers:
        if number not in generators:
            print(f"no such figure: {number}", file=sys.stderr)
            return 2
        print(render(generators[number]()))
        print()
    return 0


def _cmd_tables(_: argparse.Namespace) -> int:
    from .bench import (
        class_table,
        conclusions_table,
        render_class_table,
        render_survey_table,
        render_table,
        skew_reduction,
    )

    print(render_class_table(class_table()))
    print()
    print(render_survey_table(conclusions_table()))
    print()
    no_cache, with_cache = skew_reduction()
    print(
        render_table(
            ["configuration", "% of reads remote"],
            [
                ["no cache (paper: 22%)", no_cache],
                ["cache 256 (paper: 1%)", with_cache],
            ],
            title="T3: Hydro Fragment skew reduction (§8)",
        )
    )
    return 0


def _build(name: str, n: int | None):
    from .kernels import get_kernel

    kernel = get_kernel(name)
    return kernel, kernel.build(n=n)


def _cmd_classify(args: argparse.Namespace) -> int:
    from .core import classify

    kernel, (program, inputs) = _build(args.kernel, args.n)
    result = classify(program, inputs)
    print(result)
    print()
    print(result.dynamic.table())
    if args.verbose:
        print()
        for pattern in result.static.patterns:
            print(f"  stmt {pattern.stmt_id}: {pattern.describe()}")
    if kernel.paper_class is not None:
        agrees = "agrees" if result.final == kernel.paper_class else "DISAGREES"
        print(f"\npaper label: {kernel.paper_class} ({agrees})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench import Sweep, kernel_trace, render_series_table

    _, (program, inputs) = _build(args.kernel, args.n)
    trace = kernel_trace(program, inputs)
    sweep = Sweep.run(
        args.kernel,
        trace,
        pes=tuple(args.pes),
        page_sizes=tuple(args.page_sizes),
        caches=(args.cache, 0) if args.cache else (0,),
    )
    print(
        render_series_table(
            "PEs",
            sweep.pe_axis(),
            sweep.series(),
            title=f"{args.kernel}: % of reads remote",
            unit="",
        )
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core import advise

    _, (program, inputs) = _build(args.kernel, args.n)
    advice = advise(program, inputs, n_pes=args.pes)
    print(advice.table())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from .ir import format_program

    _, (program, _inputs) = _build(args.kernel, args.n)
    print(format_program(program))
    return 0


def _cmd_report(_: argparse.Namespace) -> int:
    """Everything in one document: figures, tables, survey."""
    from . import __version__
    from .bench import figure1, figure2, figure3, figure4, figure5, render

    print(
        "Reproduction report — Bic, Nagel & Roy (1989), "
        f"repro v{__version__}"
    )
    print("=" * 72)
    for generator in (figure1, figure2, figure3, figure4, figure5):
        print()
        print(render(generator()))
    print()
    _cmd_tables(_)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Bic, Nagel & Roy (1989): automatic "
            "data/program partitioning using single assignment."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered kernels").set_defaults(
        fn=_cmd_list
    )

    fig = sub.add_parser("figure", help="regenerate paper figures")
    fig.add_argument("numbers", nargs="*", type=int, help="figure numbers 1-5")
    fig.set_defaults(fn=_cmd_figure)

    sub.add_parser("tables", help="regenerate tables T1-T3").set_defaults(
        fn=_cmd_tables
    )

    cls = sub.add_parser("classify", help="classify one kernel")
    cls.add_argument("kernel")
    cls.add_argument("--n", type=int, default=None, help="problem size")
    cls.add_argument("-v", "--verbose", action="store_true")
    cls.set_defaults(fn=_cmd_classify)

    swp = sub.add_parser("sweep", help="sweep machine configurations")
    swp.add_argument("kernel")
    swp.add_argument("--n", type=int, default=None)
    swp.add_argument(
        "--pes", nargs="+", type=int, default=[1, 4, 8, 16, 32, 64]
    )
    swp.add_argument("--page-sizes", nargs="+", type=int, default=[32, 64])
    swp.add_argument(
        "--cache", type=int, default=256, help="cache elements (0 = none)"
    )
    swp.set_defaults(fn=_cmd_sweep)

    adv = sub.add_parser("advise", help="recommend scheme and page size (§9)")
    adv.add_argument("kernel")
    adv.add_argument("--n", type=int, default=None)
    adv.add_argument("--pes", type=int, default=16)
    adv.set_defaults(fn=_cmd_advise)

    show = sub.add_parser(
        "show", help="print a kernel as DO-loop pseudo-Fortran"
    )
    show.add_argument("kernel")
    show.add_argument("--n", type=int, default=None)
    show.set_defaults(fn=_cmd_show)

    sub.add_parser(
        "report", help="full reproduction report (all figures + tables)"
    ).set_defaults(fn=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
