"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                     # registered kernels
    python -m repro figure 1                 # regenerate Figure 1..5
    python -m repro tables                   # T1-T3
    python -m repro classify hydro_fragment  # one kernel's class
    python -m repro sweep iccg --pes 4 16 64 # custom sweep
    python -m repro sweep iccg --backend timed --topology mesh torus
    python -m repro sweep iccg --backend timed --cost-model contended \
        --reduction subrange                 # bandwidth-aware + subrange
    python -m repro sweep --campaign spec.json --parallel --json out.json
    python -m repro advise hydro_2d          # §9 partitioning advisor
    python -m repro store stats              # sharded store: sizes/counters
    python -m repro store gc --max-bytes 50000000   # evict to a budget
    python -m repro serve --campaign a.json --campaign b.json  # shared pool
    python -m repro obs summary              # telemetry event/span rollup

The ``sweep`` subcommand runs on :mod:`repro.engine`: traces come from
the persistent store (interpreted once per machine), results replay
from the store's result cache, a JSON campaign spec can drive
multi-kernel / multi-axis sweeps, ``--backend timed`` evaluates on the
discrete-event machine model (topologies × modes × cost models), and
``--parallel`` fans the scenario grid out across cores with a
streaming progress line.  The ``store`` subcommand administers the
sharded on-disk store: ``stats`` reports entry/byte counts per kind
plus hit/miss/eviction counters, ``gc`` evicts least-recently-used
entries (results before traces) down to a byte budget.  The ``serve``
subcommand runs several campaigns *concurrently* against one
long-lived evaluation service (``backend="service"``): a single
resident worker pool with a bounded job queue serves every campaign —
instead of one forked pool each — and a stats table shows what the
sharing did (jobs, dedup hits, queue high-water).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main"]


def _cmd_list(_: argparse.Namespace) -> int:
    from .kernels import all_kernels

    print(f"{'name':<22} {'LFK#':>4}  {'paper class':<12} title")
    for kernel in all_kernels():
        paper = str(kernel.paper_class) if kernel.paper_class else "-"
        print(
            f"{kernel.name:<22} {kernel.number or '-':>4}  {paper:<12} "
            f"{kernel.title}"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .bench import figure1, figure2, figure3, figure4, figure5, render

    generators = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}
    numbers = args.numbers or sorted(generators)
    for number in numbers:
        if number not in generators:
            print(f"no such figure: {number}", file=sys.stderr)
            return 2
        print(render(generators[number]()))
        print()
    return 0


def _cmd_tables(_: argparse.Namespace) -> int:
    from .bench import (
        class_table,
        conclusions_table,
        render_class_table,
        render_survey_table,
        render_table,
        skew_reduction,
    )

    print(render_class_table(class_table()))
    print()
    print(render_survey_table(conclusions_table()))
    print()
    no_cache, with_cache = skew_reduction()
    print(
        render_table(
            ["configuration", "% of reads remote"],
            [
                ["no cache (paper: 22%)", no_cache],
                ["cache 256 (paper: 1%)", with_cache],
            ],
            title="T3: Hydro Fragment skew reduction (§8)",
        )
    )
    return 0


def _build(name: str, n: int | None):
    from .kernels import get_kernel

    kernel = get_kernel(name)
    return kernel, kernel.build(n=n)


def _cmd_classify(args: argparse.Namespace) -> int:
    from .core import classify

    kernel, (program, inputs) = _build(args.kernel, args.n)
    result = classify(program, inputs)
    print(result)
    print()
    print(result.dynamic.table())
    if args.verbose:
        print()
        for pattern in result.static.patterns:
            print(f"  stmt {pattern.stmt_id}: {pattern.describe()}")
    if kernel.paper_class is not None:
        agrees = "agrees" if result.final == kernel.paper_class else "DISAGREES"
        print(f"\npaper label: {kernel.paper_class} ({agrees})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench import Sweep, render_series_table, render_table
    from .engine import CampaignSpec, KernelSpec, run_campaign

    if args.campaign:
        spec = CampaignSpec.load(args.campaign)
        if args.kernel:
            spec = spec.subset(args.kernel)
    elif args.kernel:
        spec = CampaignSpec(
            name="cli-sweep",
            kernels=tuple(KernelSpec(k, n=args.n) for k in args.kernel),
            backend=args.backend,
            pes=tuple(args.pes),
            page_sizes=tuple(args.page_sizes),
            cache_elems=(args.cache, 0) if args.cache else (0,),
            cache_policies=(args.policy,),
            partitions=(args.partition,),
            reduction_strategies=tuple(args.reduction),
            topologies=tuple(args.topology),
            modes=tuple(args.mode),
            cost_models=tuple(args.cost_model),
        )
    else:
        print("error: need a kernel name or --campaign FILE", file=sys.stderr)
        return 2
    use_cache = not args.no_cache
    if args.parallel:
        # Stream records as workers complete them.  The progress line
        # renders through the observability event log: subscribing to
        # ``campaign.point`` events activates emission, and the
        # subscriber guarantees a final newline on close, so the table
        # below never lands mid-line.
        from . import obs

        stream = run_campaign(
            spec,
            parallel=True,
            workers=args.workers,
            stream=True,
            use_cache=use_cache,
        )
        with obs.ProgressLine():
            for _record in stream:
                pass
        result = stream.result()
    else:
        result = run_campaign(spec, parallel=False, use_cache=use_cache)
    if args.json:
        print(f"wrote {result.save_json(args.json)}")
    # Figure-style series tables need one value per (page size, cache
    # on/off, PEs) cell; richer grids get the flat record table.
    series_friendly = (
        spec.backend in ("untimed", "untimed-vec")
        and len(spec.cache_policies) == 1
        and len(spec.partitions) == 1
        and len(spec.reduction_strategies) == 1
        and len([c for c in spec.cache_elems if c]) <= 1
    )
    for label in result.kernels():
        if series_friendly:
            sweep = Sweep.from_campaign(result, label)
            print(
                render_series_table(
                    "PEs",
                    sweep.pe_axis(),
                    sweep.series(),
                    title=f"{label}: % of reads remote",
                    unit="",
                )
            )
        else:
            headers, rows = result.rows(label)
            print(
                render_table(
                    headers, rows, title=f"{label}: campaign records"
                )
            )
        print()
    return 0


def _store_for(args: argparse.Namespace):
    from .engine import TraceStore, default_store

    if args.root:
        return TraceStore(args.root)
    return default_store()


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .bench import render_table

    store = _store_for(args)
    # Fold in write-ahead touch files abandoned by dead campaigns (a
    # file idle for minutes has no owner coming back for it); files a
    # live campaign is still appending to are left for their owner.
    store.merge_touches(stale_after_s=300.0)
    if args.prometheus:
        print(store.stats_registry().to_prometheus(), end="")
        return 0
    stats = store.stats()
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    budget = stats["max_bytes"]
    rows = [
        ["root", stats["root"]],
        ["policy", stats["policy"]],
        ["max_bytes", "unbounded" if budget is None else budget],
        ["shards", stats["shards"]],
        ["traces", f"{stats['trace_entries']} entries, "
                   f"{stats['trace_bytes']} bytes"],
        ["results", f"{stats['result_entries']} entries, "
                    f"{stats['result_bytes']} bytes"],
        ["total_bytes", stats["total_bytes"]],
    ]
    for kind in ("trace", "result"):
        counters = {
            name: stats[f"{kind}_{name}_total"]
            for name in ("memory_hits", "disk_hits", "misses", "evictions")
        }
        rows.append([f"{kind} counters", counters])
    print(render_table(["field", "value"], rows, title="trace store stats"))
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _store_for(args)
    store.merge_touches(stale_after_s=300.0)
    report = store.gc(max_bytes=args.max_bytes)
    if report.max_bytes is None:
        print(
            f"no disk budget set (store holds {report.total_bytes} bytes); "
            "pass --max-bytes or set REPRO_STORE_MAX_BYTES"
        )
        return 0
    print(
        f"evicted {report.evicted_results} results and "
        f"{report.evicted_traces} traces "
        f"({report.freed_bytes} bytes freed); "
        f"store now {report.total_bytes} bytes "
        f"(budget {report.max_bytes})"
        + (
            f"; {report.pinned_skipped} pinned entries skipped"
            if report.pinned_skipped
            else ""
        )
    )
    return 0


def _cmd_trace_compact(args: argparse.Namespace) -> int:
    import json as _json

    from .bench import render_table

    store = _store_for(args)
    report = store.compact_traces(refs=args.refs or None)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    if not report:
        print("no stored traces to compact")
        return 0
    rows = []
    before = after = 0
    for row in report:
        before += row["bytes_before"]
        after += row["bytes_after"]
        rows.append(
            [
                row["ref"][:12],
                row["n_ops"],
                f"{row['coverage'] * 100:.1f}%",
                row["bytes_before"],
                row["bytes_after"],
            ]
        )
    print(
        render_table(
            ["ref", "super-ops", "coverage", "bytes before", "bytes after"],
            rows,
            title="trace compaction",
        )
    )
    ratio = before / after if after else 1.0
    print(
        f"{len(report)} shard(s): {before} -> {after} bytes "
        f"({ratio:.1f}x smaller)"
    )
    return 0


def _cmd_serve_listen(args: argparse.Namespace) -> int:
    """Run the fleet server: admit campaigns, hand points to workers."""
    import asyncio

    from .engine import CampaignSpec
    from .fleet import FleetCoordinator, parse_address
    from .fleet.server import FleetServer

    host, port = parse_address(args.listen)
    coordinator = FleetCoordinator(
        max_attempts=args.max_attempts, max_campaigns=args.max_campaigns
    )
    server = FleetServer(
        coordinator, host=host, port=port, delegate=args.delegate
    )

    async def main() -> None:
        await server.start()
        # The bound port (meaningful with --listen HOST:0) goes to
        # stdout in a stable, parseable form before any campaign work.
        print(f"fleet: listening on {host}:{server.port}", flush=True)
        for path in args.campaign or ():
            spec = server._normalise(CampaignSpec.load(path))
            accepted = coordinator.submit(spec)
            print(
                f"fleet: admitted campaign {spec.name!r} "
                f"({accepted['points']} points, {accepted['campaign'][:12]})",
                flush=True,
            )
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run N campaigns concurrently over one shared evaluation service."""
    import json as _json
    import threading
    from dataclasses import replace
    from pathlib import Path

    from .backends import configure_service, get_service
    from .bench import render_table
    from .engine import CampaignSpec, run_campaign

    if args.listen:
        return _cmd_serve_listen(args)
    if not args.campaign:
        print(
            "error: pass --campaign FILE (or --listen HOST:PORT to run "
            "the fleet server)",
            file=sys.stderr,
        )
        return 2
    configure_service(
        workers=args.workers,
        queue_size=args.queue_size,
        delegate=args.delegate,
    )
    specs = []
    for path in args.campaign:
        spec = CampaignSpec.load(path)
        if spec.backend not in ("service", args.delegate):
            # Never switch a campaign's physics silently: a spec that
            # names a concrete backend is only routed through the
            # service when the service delegates to that very backend.
            raise ValueError(
                f"campaign {spec.name!r} declares backend "
                f"{spec.backend!r} but the service evaluates with "
                f"--delegate {args.delegate!r}; pass --delegate "
                f"{spec.backend!r} (or set the spec's backend to "
                f"'service')"
            )
        if spec.backend != "service":
            # The point of `serve` is the shared pool: route the
            # campaign through the service backend (validation rejects
            # specs whose axes the configured delegate cannot model).
            spec = replace(spec, backend="service")
        specs.append(spec)
    results: dict[int, object] = {}
    errors: list[tuple[str, BaseException]] = []

    def drive(slot: int, spec: CampaignSpec) -> None:
        try:
            results[slot] = run_campaign(
                spec, parallel=True, use_cache=not args.no_cache
            )
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append((spec.name, exc))

    threads = [
        threading.Thread(target=drive, args=(slot, spec))
        for slot, spec in enumerate(specs)
    ]
    # One shared progress line across all campaigns, fed by the event
    # log; closing it guarantees the stats tables start on a fresh
    # line instead of appending to a half-drawn progress line.
    from . import obs

    with obs.ProgressLine():
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    for name, exc in errors:
        print(f"error in campaign {name!r}: {exc}", file=sys.stderr)
    if errors:
        return 1
    rows = [
        [
            spec.name,
            len(results[slot]),  # type: ignore[arg-type]
            results[slot].executor,  # type: ignore[union-attr]
            f"{results[slot].elapsed_s:.2f}s",  # type: ignore[union-attr]
        ]
        for slot, spec in enumerate(specs)
    ]
    print(
        render_table(
            ["campaign", "points", "executor", "wall"],
            rows,
            title=f"{len(specs)} campaigns over one evaluation service",
        )
    )
    stats = get_service().stats()
    print()
    print(
        render_table(
            ["field", "value"],
            [[key, stats[key]] for key in sorted(stats)],
            title="service stats",
        )
    )
    if args.json:
        document = {
            "service": stats,
            "campaigns": [
                results[slot].to_dict()  # type: ignore[union-attr]
                for slot in range(len(specs))
            ],
        }
        Path(args.json).write_text(
            _json.dumps(document, indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one fleet worker (TCP mode or filesystem spool mode)."""
    from .engine import TraceStore
    from .fleet.worker import run_spool_worker, run_worker

    store = (
        TraceStore(args.store_root) if args.store_root is not None else None
    )
    if args.connect:
        return run_worker(
            args.connect,
            store=store,
            max_jobs=args.max_jobs,
            idle_exit_s=args.idle_exit,
        )
    if store is None:
        print(
            "error: pass --connect HOST:PORT (TCP mode) or "
            "--store-root PATH (spool mode)",
            file=sys.stderr,
        )
        return 2
    return run_spool_worker(store=store, once=not args.watch)


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Validate, print the schema for, or submit campaign specs."""
    import json as _json
    from pathlib import Path

    from .engine import CampaignSpec
    from .fleet import CAMPAIGN_SCHEMA, validate_campaign

    if args.campaign_command == "schema":
        print(_json.dumps(CAMPAIGN_SCHEMA, indent=2))
        return 0

    if args.campaign_command == "validate":
        failures = 0
        for name in args.spec:
            try:
                document = _json.loads(Path(name).read_text())
            except (OSError, ValueError) as exc:
                print(f"{name}: unreadable: {exc}")
                failures += 1
                continue
            violations = validate_campaign(document)
            if not violations:
                try:
                    spec = CampaignSpec.from_dict(document)
                except (KeyError, ValueError) as exc:
                    violations = [f"$: {exc}"]
            if violations:
                failures += 1
                print(f"{name}: INVALID")
                for violation in violations:
                    print(f"  {violation}")
            else:
                print(
                    f"{name}: ok — campaign {spec.name!r}, "
                    f"{spec.n_points} points, backend {spec.backend!r}"
                )
        return 1 if failures else 0

    # submit: over TCP to a fleet server, or into a spool directory.
    if args.campaign_command == "submit":
        if args.store_root is not None:
            from .engine import TraceStore
            from .fleet.worker import spool_dir

            spool = spool_dir(TraceStore(args.store_root))
            spool.mkdir(parents=True, exist_ok=True)
            for name in args.spec:
                spec = CampaignSpec.load(name)
                target = spool / f"{spec.digest[:16]}.json"
                spec.save(target)
                print(f"spooled {spec.name!r} -> {target}")
            return 0
        if not args.connect:
            print(
                "error: pass --connect HOST:PORT or --store-root PATH",
                file=sys.stderr,
            )
            return 2
        from .fleet import FleetClient

        exit_code = 0
        with FleetClient(args.connect) as client:
            digests = []
            for name in args.spec:
                document = _json.loads(Path(name).read_text())
                reply = client.request({"op": "submit", "spec": document})
                print(
                    f"accepted {name}: campaign {reply['campaign'][:12]} "
                    f"({reply['points']} points, backend {reply['backend']!r}"
                    + (", already known)" if reply.get("known") else ")")
                )
                digests.append(reply["campaign"])
            if args.wait:
                for digest in digests:
                    while True:
                        status = client.request(
                            {"op": "wait", "campaign": digest, "timeout": 30}
                        )
                        if status["state"] != "running":
                            break
                        print(
                            f"waiting on {digest[:12]}: "
                            f"{status['done']}/{status['total']} done",
                            flush=True,
                        )
                    failures = status.get("failures") or {}
                    print(
                        f"campaign {digest[:12]} {status['state']}: "
                        f"{status['done']}/{status['total']} points"
                        + (f", {len(failures)} failed" if failures else "")
                    )
                    for index, error in sorted(failures.items()):
                        print(f"  point {index}: {error}")
                    if status["state"] != "done":
                        exit_code = 1
        return exit_code
    raise AssertionError(f"unknown campaign command {args.campaign_command}")


def _cmd_obs(args: argparse.Namespace) -> int:
    """Inspect the observability event log: tail, summary, merge.

    Every subcommand folds the per-process ``<stem>-<pid>.jsonl``
    files into the merged ``<stem>.jsonl`` first, so the view is
    always current even while campaigns are running.
    """
    import json as _json
    from collections import Counter as _Counter

    from . import obs

    merged = obs.merge(args.stem)
    if merged is None:
        print(
            "error: no event log configured; pass --stem PATH or set "
            "REPRO_OBS=jsonl:<path>",
            file=sys.stderr,
        )
        return 2
    events = list(obs.read_events(merged))
    if args.obs_command == "merge":
        print(f"merged {len(events)} events into {merged}")
        return 0
    if args.obs_command == "tail":
        for record in events[-args.lines:]:
            print(_json.dumps(record, default=str))
        return 0
    # summary: event-type histogram plus aggregated span durations.
    from .bench import render_table

    kinds = _Counter(str(e.get("event", "?")) for e in events)
    print(
        render_table(
            ["event", "count"],
            [[name, kinds[name]] for name in sorted(kinds)],
            title=f"{len(events)} events in {merged}",
        )
    )
    spans = [e for e in events if e.get("event") == "span"]
    if spans:
        count: _Counter = _Counter()
        total: dict[str, float] = {}
        for entry in spans:
            name = str(entry.get("name", "?"))
            count[name] += 1
            total[name] = total.get(name, 0.0) + float(
                entry.get("dur_s", 0.0) or 0.0
            )
        rows = [
            [
                name,
                count[name],
                f"{total[name]:.4f}s",
                f"{total[name] / count[name]:.4f}s",
            ]
            for name in sorted(total, key=lambda n: -total[n])
        ]
        print()
        print(
            render_table(
                ["span", "count", "total", "mean"],
                rows,
                title="span durations",
            )
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core import advise

    _, (program, inputs) = _build(args.kernel, args.n)
    advice = advise(program, inputs, n_pes=args.pes)
    print(advice.table())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from .ir import format_program

    _, (program, _inputs) = _build(args.kernel, args.n)
    print(format_program(program))
    return 0


def _cmd_report(_: argparse.Namespace) -> int:
    """Everything in one document: figures, tables, survey."""
    from . import __version__
    from .bench import figure1, figure2, figure3, figure4, figure5, render

    print(
        "Reproduction report — Bic, Nagel & Roy (1989), "
        f"repro v{__version__}"
    )
    print("=" * 72)
    for generator in (figure1, figure2, figure3, figure4, figure5):
        print()
        print(render(generator()))
    print()
    _cmd_tables(_)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Bic, Nagel & Roy (1989): automatic "
            "data/program partitioning using single assignment."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered kernels").set_defaults(
        fn=_cmd_list
    )

    fig = sub.add_parser("figure", help="regenerate paper figures")
    fig.add_argument("numbers", nargs="*", type=int, help="figure numbers 1-5")
    fig.set_defaults(fn=_cmd_figure)

    sub.add_parser("tables", help="regenerate tables T1-T3").set_defaults(
        fn=_cmd_tables
    )

    cls = sub.add_parser("classify", help="classify one kernel")
    cls.add_argument("kernel")
    cls.add_argument("--n", type=int, default=None, help="problem size")
    cls.add_argument("-v", "--verbose", action="store_true")
    cls.set_defaults(fn=_cmd_classify)

    swp = sub.add_parser(
        "sweep", help="sweep evaluation scenarios (engine-backed)"
    )
    swp.add_argument(
        "kernel", nargs="*", help="kernel name(s); optional with --campaign"
    )
    swp.add_argument("--n", type=int, default=None)
    swp.add_argument(
        "--backend",
        default="untimed-vec",
        help=(
            "evaluation backend (untimed-vec [default], untimed, timed, "
            "service)"
        ),
    )
    swp.add_argument(
        "--pes", nargs="+", type=int, default=[1, 4, 8, 16, 32, 64]
    )
    swp.add_argument("--page-sizes", nargs="+", type=int, default=[32, 64])
    swp.add_argument(
        "--cache", type=int, default=256, help="cache elements (0 = none)"
    )
    swp.add_argument(
        "--policy", default="lru", help="cache policy (lru/fifo/random/direct)"
    )
    swp.add_argument(
        "--partition",
        default="modulo",
        help="partition scheme (modulo, block, block-cyclic:K)",
    )
    swp.add_argument(
        "--reduction",
        nargs="+",
        default=["host"],
        choices=["host", "subrange"],
        help="reduction strategies (host funnel, subrange collection)",
    )
    swp.add_argument(
        "--topology",
        nargs="+",
        default=["crossbar"],
        help=(
            "timed backend: interconnect topologies (crossbar, bus, ring, "
            "mesh, torus, hypercube)"
        ),
    )
    swp.add_argument(
        "--mode",
        nargs="+",
        default=["blocking"],
        choices=["blocking", "multithreaded"],
        help="timed backend: PE execution modes",
    )
    swp.add_argument(
        "--cost-model",
        nargs="+",
        default=["default"],
        help="timed backend: cost-model presets (default, fast-network, "
        "slow-network, contended, infinite-bw)",
    )
    swp.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the store's result cache (force re-evaluation)",
    )
    swp.add_argument(
        "--campaign",
        metavar="FILE",
        default=None,
        help="JSON campaign spec (overrides the axis flags)",
    )
    swp.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write full campaign results as JSON",
    )
    swp.add_argument(
        "--parallel",
        action="store_true",
        help="fan the configuration grid out across cores",
    )
    swp.add_argument(
        "--workers", type=int, default=None, help="worker processes"
    )
    swp.set_defaults(fn=_cmd_sweep)

    store = sub.add_parser(
        "store", help="administer the sharded trace/result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser(
        "stats", help="entry/byte counts per kind, shard and counter stats"
    )
    stats.add_argument(
        "--root", default=None, help="store root (default: the active store)"
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text-format export of the stats registry",
    )
    stats.set_defaults(fn=_cmd_store_stats)
    gc = store_sub.add_parser(
        "gc", help="evict LRU entries (results first) down to a byte budget"
    )
    gc.add_argument(
        "--root", default=None, help="store root (default: the active store)"
    )
    gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="disk budget to enforce (default: the store's own budget)",
    )
    gc.set_defaults(fn=_cmd_store_gc)

    trace_parser = sub.add_parser(
        "trace", help="inspect and rewrite stored access traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    tcompact = trace_sub.add_parser(
        "compact",
        help=(
            "rewrite stored trace shards into the super-op v2 layout "
            "(lossless; replay stays bit-identical)"
        ),
    )
    tcompact.add_argument(
        "--root", default=None, help="store root (default: the active store)"
    )
    tcompact.add_argument(
        "refs",
        nargs="*",
        help="trace refs to compact (default: every stored trace)",
    )
    tcompact.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    tcompact.set_defaults(fn=_cmd_trace_compact)

    serve = sub.add_parser(
        "serve",
        help=(
            "run campaigns over one shared evaluation service, or "
            "(--listen) serve them to fleet workers"
        ),
    )
    serve.add_argument(
        "--campaign",
        metavar="FILE",
        action="append",
        help="JSON campaign spec (repeat for concurrent campaigns)",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "fleet mode: listen for workers and campaign submissions "
            "(port 0 picks a free port, printed on startup)"
        ),
    )
    serve.add_argument(
        "--max-campaigns",
        type=int,
        default=None,
        help="fleet mode: bound on concurrently admitted campaigns",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="fleet mode: attempts per point before a structured failure",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="resident pool size (default: one per core; 0 = inline)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=128,
        help="bound on the service's admission queue",
    )
    serve.add_argument(
        "--delegate",
        default="untimed-vec",
        help=(
            "backend the service evaluates with "
            "(untimed-vec [default], untimed, timed)"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the store's result cache (force re-evaluation)",
    )
    serve.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write campaign results + service stats as JSON",
    )
    serve.set_defaults(fn=_cmd_serve)

    worker = sub.add_parser(
        "worker", help="run one fleet worker against a shared store root"
    )
    worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="fleet server to pull jobs from (TCP mode)",
    )
    worker.add_argument(
        "--store-root",
        metavar="PATH",
        default=None,
        help=(
            "shared store root (default: the active store); without "
            "--connect this selects spool mode"
        ),
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after settling this many points",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit 0 after this many seconds without work",
    )
    worker.add_argument(
        "--watch",
        action="store_true",
        help="spool mode: keep polling instead of one pass",
    )
    worker.set_defaults(fn=_cmd_worker)

    campaign = sub.add_parser(
        "campaign", help="validate, describe, or submit campaign specs"
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    validate = campaign_sub.add_parser(
        "validate", help="check spec files against the versioned schema"
    )
    validate.add_argument("spec", nargs="+", metavar="FILE")
    validate.set_defaults(fn=_cmd_campaign)
    campaign_sub.add_parser(
        "schema", help="print the campaign-spec JSON Schema"
    ).set_defaults(fn=_cmd_campaign)
    submit = campaign_sub.add_parser(
        "submit", help="submit spec files to a fleet server (or spool)"
    )
    submit.add_argument("spec", nargs="+", metavar="FILE")
    submit.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="fleet server address",
    )
    submit.add_argument(
        "--store-root", metavar="PATH", default=None,
        help="spool the specs under this store root instead",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the submitted campaigns finish",
    )
    submit.set_defaults(fn=_cmd_campaign)

    obs_parser = sub.add_parser(
        "obs", help="inspect the observability event log (REPRO_OBS)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    for name, help_text in (
        ("tail", "print the last N merged events as JSON lines"),
        ("summary", "event-type histogram and span duration rollup"),
        ("merge", "fold per-process event files into <stem>.jsonl"),
    ):
        obs_cmd = obs_sub.add_parser(name, help=help_text)
        obs_cmd.add_argument(
            "--stem",
            default=None,
            help="event log stem/path (default: parsed from REPRO_OBS)",
        )
        if name == "tail":
            obs_cmd.add_argument(
                "-n", "--lines", type=int, default=20, help="events to show"
            )
        obs_cmd.set_defaults(fn=_cmd_obs)

    adv = sub.add_parser("advise", help="recommend scheme and page size (§9)")
    adv.add_argument("kernel")
    adv.add_argument("--n", type=int, default=None)
    adv.add_argument("--pes", type=int, default=16)
    adv.set_defaults(fn=_cmd_advise)

    show = sub.add_parser(
        "show", help="print a kernel as DO-loop pseudo-Fortran"
    )
    show.add_argument("kernel")
    show.add_argument("--n", type=int, default=None)
    show.set_defaults(fn=_cmd_show)

    sub.add_parser(
        "report", help="full reproduction report (all figures + tables)"
    ).set_defaults(fn=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # e.g. `repro obs tail | head`: the consumer closed the pipe.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (KeyError, ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
