"""Loop nests and whole programs for the IR.

A :class:`Program` is a named list of top-level loops/statements over a
set of declared arrays, mirroring a Fortran kernel from the Livermore
Loops.  Bounds are inclusive (Fortran ``DO`` semantics), may reference
outer loop variables (triangular nests such as kernel 6), and may be
negative-stepped.

Programs are *staged*: kernels with data-dependent control flow (the
ICCG halving loop of §7.1.3) are built by Python code that emits a
fully concrete sequence of ``Loop`` nodes for a given problem size, so
the IR itself stays free of unstructured control flow while still
reproducing the exact dynamic access sequence of the Fortran original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .expr import EvalContext, Expr, as_expr
from .stmt import Statement, _all_statements

__all__ = ["ArrayDecl", "Loop", "Program"]


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of one array: a name, a shape, and a role.

    ``role`` is ``"input"`` (pre-initialised before the loop runs — the
    paper's "filled with initialization data", §3), ``"output"``
    (written by the kernel; starts undefined), or ``"inout"`` (both:
    some cells initialised, others produced — used by recurrences that
    read seed values).
    """

    name: str
    shape: tuple[int, ...]
    role: str = "input"

    def __post_init__(self) -> None:
        if self.role not in ("input", "output", "inout"):
            raise ValueError(f"bad array role {self.role!r}")
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ValueError(f"bad shape {self.shape!r} for array {self.name!r}")

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n


@dataclass
class Loop:
    """``DO var = lo, hi, step`` over ``body`` (inclusive bounds)."""

    var: str
    lo: Expr | int
    hi: Expr | int
    body: list["Loop | Statement"] = field(default_factory=list)
    step: int = 1

    def __post_init__(self) -> None:
        self.lo = as_expr(self.lo)
        self.hi = as_expr(self.hi)
        if self.step == 0:
            raise ValueError("loop step must be nonzero")

    def bounds(self, scalars: Mapping[str, float]) -> tuple[int, int]:
        """Concrete (lo, hi) given bindings for any outer loop vars."""
        ctx = EvalContext(dict(scalars), _no_reads)
        lo = int(round(self.lo.evaluate(ctx)))
        hi = int(round(self.hi.evaluate(ctx)))
        return lo, hi

    def iter_values(self, scalars: Mapping[str, float]) -> range:
        lo, hi = self.bounds(scalars)
        if self.step > 0:
            return range(lo, hi + 1, self.step)
        return range(lo, hi - 1, self.step)

    def statements(self) -> Iterator[Statement]:
        yield from _all_statements(self.body)

    def loop_vars(self) -> list[str]:
        """This loop's variable followed by all nested loop variables."""
        names = [self.var]
        for node in self.body:
            if isinstance(node, Loop):
                names.extend(node.loop_vars())
        return names


def _no_reads(array: str, idx: tuple[int, ...]) -> float:
    raise ValueError(
        f"loop bound reads array {array!r}; bounds must be scalar expressions"
    )


@dataclass
class Program:
    """A complete kernel: declarations, scalar constants, and a body."""

    name: str
    arrays: dict[str, ArrayDecl]
    scalars: dict[str, float]
    body: list[Loop | Statement]
    description: str = ""
    # Arrays whose final contents constitute the kernel's result.
    outputs: tuple[str, ...] = ()
    _finalized: bool = field(default=False, repr=False)

    def finalize(self) -> "Program":
        """Assign stable statement ids and validate references."""
        for sid, stmt in enumerate(self.statements()):
            stmt.stmt_id = sid
        for stmt in self.statements():
            self._check_ref(stmt.target.array, stmt)
            for ref in stmt.reads():
                self._check_ref(ref.array, stmt)
        if not self.outputs:
            self.outputs = tuple(
                sorted({s.target.array for s in self.statements()})
            )
        self._finalized = True
        return self

    def _check_ref(self, array: str, stmt: Statement) -> None:
        if array not in self.arrays:
            raise KeyError(
                f"statement {stmt!r} references undeclared array {array!r}"
            )

    # -- introspection -------------------------------------------------------
    def statements(self) -> Iterator[Statement]:
        yield from _all_statements(self.body)

    def loops(self) -> Iterator[Loop]:
        def rec(body: Sequence[Loop | Statement]) -> Iterator[Loop]:
            for node in body:
                if isinstance(node, Loop):
                    yield node
                    yield from rec(node.body)

        yield from rec(self.body)

    def arrays_written(self) -> set[str]:
        return {s.target.array for s in self.statements()}

    def arrays_read(self) -> set[str]:
        names: set[str] = set()
        for stmt in self.statements():
            names |= stmt.arrays_read()
        return names

    def loop_var_names(self) -> set[str]:
        return {loop.var for loop in self.loops()}

    def total_elements(self) -> int:
        return sum(decl.size for decl in self.arrays.values())

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, arrays={sorted(self.arrays)}, "
            f"statements={sum(1 for _ in self.statements())})"
        )
