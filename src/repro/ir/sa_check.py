"""Static single-assignment checking ("data path analysis", §5).

The paper suggests that "conventional compilers can be modified to
perform data path analysis to help programmers adhere to single
assignment rules".  This module implements that analysis for the IR:

* **Within one statement** — the affine map from the iteration vector
  to the target multi-index is injective iff its coefficient matrix has
  full column rank over the rationals (a linear map injective on
  ``Q^d`` is injective on the integer lattice).  When the matrix is
  rank-deficient we search the rational null space for an integer
  vector connecting two in-bounds iterations: if found, that pair is a
  concrete *witness* of a double write.

* **Across statements** — two statements writing the same array are
  compared via the interval hull of each target dimension (evaluated
  over constant loop bounds).  Disjoint hulls in any dimension prove
  independence; overlapping hulls are reported as potential conflicts.

Verdicts are deliberately three-valued — ``OK`` / ``UNKNOWN`` /
``VIOLATION`` — because exact integer-programming disambiguation is
out of scope (and was in 1989 too: "most currently known methods are
NP-complete", §2).  The dynamic check in the interpreter remains the
ground truth; every static VIOLATION comes with a witness that the
interpreter will also reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Sequence

from .expr import AffineForm
from .loops import Loop, Program
from .stmt import Reduction, Statement

__all__ = ["CheckReport", "Finding", "Verdict", "check_program"]


class Verdict:
    """Tri-state analysis outcome (ordered by severity)."""

    OK = "ok"
    UNKNOWN = "unknown"
    VIOLATION = "violation"

    _SEVERITY = {OK: 0, UNKNOWN: 1, VIOLATION: 2}

    @classmethod
    def worst(cls, *verdicts: str) -> str:
        return max(verdicts, key=cls._SEVERITY.__getitem__)


@dataclass
class Finding:
    """One analysis result attached to a statement (or a pair)."""

    verdict: str
    stmt_id: int
    message: str
    other_stmt_id: int | None = None
    witness: tuple[dict[str, int], dict[str, int]] | None = None

    def __str__(self) -> str:
        loc = f"stmt {self.stmt_id}"
        if self.other_stmt_id is not None:
            loc += f" vs stmt {self.other_stmt_id}"
        return f"[{self.verdict}] {loc}: {self.message}"


@dataclass
class CheckReport:
    """Aggregated verdict for a whole program."""

    program: str
    verdict: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict == Verdict.OK

    def violations(self) -> list[Finding]:
        return [f for f in self.findings if f.verdict == Verdict.VIOLATION]

    def __str__(self) -> str:
        lines = [f"single-assignment check for {self.program!r}: {self.verdict}"]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# statement context: enclosing loops with (constant) bounds where available
# ---------------------------------------------------------------------------


@dataclass
class _StmtContext:
    stmt: Statement
    loops: list[Loop]  # outermost first

    def loop_vars(self) -> list[str]:
        return [loop.var for loop in self.loops]

    def const_ranges(self) -> dict[str, tuple[int, int]] | None:
        """Per-var inclusive (lo, hi) if every bound is constant."""
        ranges: dict[str, tuple[int, int]] = {}
        for loop in self.loops:
            lo_form = loop.lo.affine()
            hi_form = loop.hi.affine()
            if lo_form is None or hi_form is None:
                return None
            if not lo_form.is_constant or not hi_form.is_constant:
                return None
            lo, hi = int(lo_form.const), int(hi_form.const)
            if loop.step < 0:
                lo, hi = hi, lo
            ranges[loop.var] = (lo, hi)
        return ranges

    def trip_counts(self) -> dict[str, int] | None:
        ranges = self.const_ranges()
        if ranges is None:
            return None
        counts = {}
        for loop in self.loops:
            lo, hi = ranges[loop.var]
            counts[loop.var] = max(0, (hi - lo) // abs(loop.step) + 1)
        return counts


def _contexts(program: Program) -> Iterator[_StmtContext]:
    def rec(body: Sequence[Loop | Statement], loops: list[Loop]) -> Iterator[_StmtContext]:
        for node in body:
            if isinstance(node, Loop):
                yield from rec(node.body, loops + [node])
            else:
                yield _StmtContext(node, list(loops))

    yield from rec(program.body, [])


# ---------------------------------------------------------------------------
# rational linear algebra (tiny, exact)
# ---------------------------------------------------------------------------


def _rank_and_nullvec(
    matrix: list[list[Fraction]],
) -> tuple[int, list[Fraction] | None]:
    """Column rank of ``matrix`` and one nonzero null-space vector (if any).

    ``matrix`` is rows x cols with rows = subscript dimensions and cols =
    loop variables.  Returns (rank, v) where ``v`` (length cols) solves
    ``matrix @ v == 0``, or ``None`` when the columns are independent.
    """
    if not matrix or not matrix[0]:
        return 0, None
    rows = [row[:] for row in matrix]
    n_rows, n_cols = len(rows), len(rows[0])
    pivot_cols: list[int] = []
    r = 0
    for c in range(n_cols):
        pivot = next((i for i in range(r, n_rows) if rows[i][c] != 0), None)
        if pivot is None:
            continue
        rows[r], rows[pivot] = rows[pivot], rows[r]
        inv = Fraction(1) / rows[r][c]
        rows[r] = [x * inv for x in rows[r]]
        for i in range(n_rows):
            if i != r and rows[i][c] != 0:
                factor = rows[i][c]
                rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
        pivot_cols.append(c)
        r += 1
        if r == n_rows:
            break
    rank = len(pivot_cols)
    if rank == n_cols:
        return rank, None
    # Build a null vector from the first free column.
    free = next(c for c in range(n_cols) if c not in pivot_cols)
    vec = [Fraction(0)] * n_cols
    vec[free] = Fraction(1)
    for row, pc in zip(rows, pivot_cols):
        vec[pc] = -row[free]
    return rank, vec


def _integerize(vec: list[Fraction]) -> list[int]:
    """Scale a rational vector to the smallest integer multiple."""
    denom = 1
    for f in vec:
        denom = denom * f.denominator // _gcd(denom, f.denominator)
    ints = [int(f * denom) for f in vec]
    g = 0
    for v in ints:
        g = _gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    return ints


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


# ---------------------------------------------------------------------------
# per-statement injectivity
# ---------------------------------------------------------------------------


def _check_statement(ctx: _StmtContext) -> Finding:
    stmt = ctx.stmt
    if isinstance(stmt, Reduction):
        return Finding(
            Verdict.OK,
            stmt.stmt_id,
            "reduction target is exempt (host-processor accumulation)",
        )
    forms = stmt.target.sub_affine()
    if forms is None:
        return Finding(
            Verdict.UNKNOWN,
            stmt.stmt_id,
            f"target {stmt.target.array!r} has a non-affine subscript; "
            "cannot prove injectivity statically",
        )
    loop_vars = ctx.loop_vars()
    varying = [v for v in loop_vars if any(f.coeff(v) != 0 for f in forms)]
    trip = ctx.trip_counts()
    missing = [v for v in loop_vars if v not in varying]
    if missing and trip is not None:
        repeats = 1
        for v in missing:
            repeats *= trip[v]
        if repeats > 1:
            witness_var = next(v for v in missing if trip[v] > 1)
            ranges = ctx.const_ranges()
            assert ranges is not None
            lo = {v: ranges[v][0] for v in loop_vars}
            second = dict(lo)
            step = next(
                loop.step for loop in ctx.loops if loop.var == witness_var
            )
            second[witness_var] = lo[witness_var] + step
            return Finding(
                Verdict.VIOLATION,
                stmt.stmt_id,
                f"target subscripts of {stmt.target.array!r} do not vary with "
                f"loop variable(s) {missing}; the same cell is written "
                f"{repeats} times",
                witness=(lo, second),
            )
    if not varying:
        # Single-trip loops (or straight-line statement): at most one write.
        return Finding(Verdict.OK, stmt.stmt_id, "single write instance")
    matrix = [[form.coeff(v) for v in varying] for form in forms]
    rank, nullvec = _rank_and_nullvec(matrix)
    if nullvec is None:
        return Finding(
            Verdict.OK,
            stmt.stmt_id,
            "target map has full column rank; one write per cell",
        )
    # Rank-deficient: look for an integer witness inside the bounds.
    # Pick the base iteration per component so that both the base and the
    # shifted point fit the box: start at `lo` for nonnegative deltas and
    # at `lo - delta` for negative ones.
    delta = _integerize(nullvec)
    ranges = ctx.const_ranges()
    if ranges is not None:
        base = {v: ranges[v][0] for v in ctx.loop_vars()}
        shifted = dict(base)
        feasible = any(d != 0 for d in delta)
        for v, d in zip(varying, delta):
            lo, hi = ranges[v]
            start = lo if d >= 0 else lo - d
            base[v] = start
            shifted[v] = start + d
            if not (lo <= start <= hi and lo <= shifted[v] <= hi):
                feasible = False
                break
        if feasible:
            return Finding(
                Verdict.VIOLATION,
                stmt.stmt_id,
                f"iterations {base} and {shifted} write the same cell of "
                f"{stmt.target.array!r}",
                witness=(base, shifted),
            )
    return Finding(
        Verdict.UNKNOWN,
        stmt.stmt_id,
        f"target map of {stmt.target.array!r} is rank-deficient but no "
        "in-bounds collision witness was found",
    )


# ---------------------------------------------------------------------------
# cross-statement region overlap
# ---------------------------------------------------------------------------


def _dim_interval(
    form: AffineForm, ranges: dict[str, tuple[int, int]]
) -> tuple[Fraction, Fraction] | None:
    lo = hi = form.const
    for var, coeff in form.coeffs:
        if var not in ranges:
            return None
        vlo, vhi = ranges[var]
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    return lo, hi


def _check_pair(a: _StmtContext, b: _StmtContext) -> Finding | None:
    """Compare two statements writing the same array."""
    sa, sb = a.stmt, b.stmt
    if isinstance(sa, Reduction) or isinstance(sb, Reduction):
        return None
    forms_a = sa.target.sub_affine()
    forms_b = sb.target.sub_affine()
    if forms_a is None or forms_b is None:
        return Finding(
            Verdict.UNKNOWN,
            sa.stmt_id,
            f"both write {sa.target.array!r}; non-affine subscripts prevent "
            "region comparison",
            other_stmt_id=sb.stmt_id,
        )
    ranges_a, ranges_b = a.const_ranges(), b.const_ranges()
    if ranges_a is None or ranges_b is None:
        return Finding(
            Verdict.UNKNOWN,
            sa.stmt_id,
            f"both write {sa.target.array!r}; non-constant loop bounds "
            "prevent region comparison",
            other_stmt_id=sb.stmt_id,
        )
    for dim, (fa, fb) in enumerate(zip(forms_a, forms_b)):
        ia = _dim_interval(fa, ranges_a)
        ib = _dim_interval(fb, ranges_b)
        if ia is None or ib is None:
            continue
        if ia[1] < ib[0] or ib[1] < ia[0]:
            return Finding(
                Verdict.OK,
                sa.stmt_id,
                f"writes to {sa.target.array!r} are separated in dimension "
                f"{dim} ([{ia[0]},{ia[1]}] vs [{ib[0]},{ib[1]}])",
                other_stmt_id=sb.stmt_id,
            )
    return Finding(
        Verdict.UNKNOWN,
        sa.stmt_id,
        f"write regions of {sa.target.array!r} may overlap across statements",
        other_stmt_id=sb.stmt_id,
    )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def check_program(program: Program) -> CheckReport:
    """Run the full static single-assignment analysis over a program."""
    contexts = list(_contexts(program))
    findings: list[Finding] = []
    for ctx in contexts:
        findings.append(_check_statement(ctx))
    by_array: dict[str, list[_StmtContext]] = {}
    for ctx in contexts:
        by_array.setdefault(ctx.stmt.target.array, []).append(ctx)
    for array_contexts in by_array.values():
        for i in range(len(array_contexts)):
            for j in range(i + 1, len(array_contexts)):
                finding = _check_pair(array_contexts[i], array_contexts[j])
                if finding is not None:
                    findings.append(finding)
    verdict = Verdict.worst(Verdict.OK, *(f.verdict for f in findings))
    return CheckReport(program=program.name, verdict=verdict, findings=findings)
