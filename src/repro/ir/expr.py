"""Expression trees for the loop-nest intermediate representation.

The paper's partitioning scheme operates on Fortran-style loops over
arrays (the Livermore Loops).  This module provides a small expression
language that is rich enough to express every kernel the paper names:

* integer *index expressions* such as ``k + 10`` or ``101 - i`` used as
  array subscripts,
* floating-point *value expressions* such as
  ``Q + Y(k) * (R * ZX(k+10) + T * ZX(k+11))`` used on the right-hand
  side of assignments,
* *indirect* subscripts such as ``IX(IL(k))`` (permutation lookups),
  which the paper's Class 4 ("random distribution") loops rely on.

Expressions support Python operator overloading so kernels read close
to the original Fortran::

    k = Var("k")
    rhs = Const(0.5) * (X[k + 10] + X[k + 11])

Affine analysis (:meth:`Expr.affine`) extracts the linear form of an
index expression over the loop variables.  The access-pattern
classifier (:mod:`repro.core.classify`) uses it to distinguish the
paper's Matched / Skewed / Cyclic classes statically; subscripts that
are not affine (e.g. contain an array read) are conservatively treated
as Random.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "AffineForm",
    "BinOp",
    "Call",
    "Const",
    "EvalContext",
    "Expr",
    "Max",
    "Min",
    "Ref",
    "Var",
    "as_expr",
]

# Math functions usable in Call nodes.  All are scalar float -> float.
_FUNCTIONS: dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "abs": abs,
    "sign": lambda x: math.copysign(1.0, x),
    # Truncation/floor are what Fortran INT() does; the particle-in-cell
    # kernels use them to turn coordinates into (indirect) subscripts.
    "trunc": math.trunc,
    "floor": math.floor,
}


@dataclass(frozen=True)
class AffineForm:
    """A linear function ``const + sum(coeffs[v] * v)`` of loop variables.

    Coefficients are exact rationals so that analyses such as "does the
    read index advance at half the speed of the write index" (the
    paper's Cyclic class, §7.1.3) do not suffer floating point noise.
    """

    const: Fraction
    coeffs: tuple[tuple[str, Fraction], ...]  # sorted, zero-free

    @staticmethod
    def constant(value: int | Fraction) -> "AffineForm":
        return AffineForm(Fraction(value), ())

    @staticmethod
    def variable(name: str) -> "AffineForm":
        return AffineForm(Fraction(0), ((name, Fraction(1)),))

    def coeff(self, name: str) -> Fraction:
        """Coefficient of variable ``name`` (0 if absent)."""
        for var, c in self.coeffs:
            if var == name:
                return c
        return Fraction(0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def _combine(self, other: "AffineForm", sign: int) -> "AffineForm":
        merged: dict[str, Fraction] = dict(self.coeffs)
        for var, c in other.coeffs:
            merged[var] = merged.get(var, Fraction(0)) + sign * c
        coeffs = tuple(sorted((v, c) for v, c in merged.items() if c != 0))
        return AffineForm(self.const + sign * other.const, coeffs)

    def __add__(self, other: "AffineForm") -> "AffineForm":
        return self._combine(other, +1)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self._combine(other, -1)

    def scale(self, factor: Fraction) -> "AffineForm":
        if factor == 0:
            return AffineForm.constant(0)
        return AffineForm(
            self.const * factor,
            tuple((v, c * factor) for v, c in self.coeffs),
        )

    def substitute(self, bindings: Mapping[str, "AffineForm"]) -> "AffineForm":
        """Replace variables by affine forms (e.g. loop bounds)."""
        out = AffineForm.constant(self.const)
        for var, c in self.coeffs:
            if var in bindings:
                out = out + bindings[var].scale(c)
            else:
                out = out + AffineForm.variable(var).scale(c)
        return out

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [str(self.const)] if self.const or not self.coeffs else []
        parts.extend(f"{c}*{v}" for v, c in self.coeffs)
        return " + ".join(parts)


class EvalContext:
    """Environment an expression is evaluated in.

    ``scalars`` maps loop variables and scalar constants to numbers.
    ``read`` is invoked for every array-element read so that the
    simulator can trace accesses; it returns the element's value.
    """

    __slots__ = ("scalars", "read")

    def __init__(
        self,
        scalars: dict[str, float],
        read: Callable[[str, tuple[int, ...]], float],
    ) -> None:
        self.scalars = scalars
        self.read = read

    def child(self) -> "EvalContext":
        return EvalContext(dict(self.scalars), self.read)


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    # -- construction sugar -------------------------------------------------
    def __add__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __floordiv__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("//", self, as_expr(other))

    def __mod__(self, other: "Expr | int | float") -> "BinOp":
        return BinOp("%", self, as_expr(other))

    def __neg__(self) -> "BinOp":
        return BinOp("-", Const(0), self)

    # -- analysis -----------------------------------------------------------
    def evaluate(self, ctx: EvalContext) -> float:
        raise NotImplementedError

    def affine(self) -> AffineForm | None:
        """Affine form over free variables, or ``None`` if non-affine."""
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def refs(self) -> Iterator["Ref"]:
        """Yield every array reference contained in the expression."""
        for node in self.walk():
            if isinstance(node, Ref):
                yield node

    def free_vars(self) -> set[str]:
        """Names of all scalar/loop variables read by this expression."""
        return {node.name for node in self.walk() if isinstance(node, Var)}


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def evaluate(self, ctx: EvalContext) -> float:
        return self.value

    def affine(self) -> AffineForm | None:
        if isinstance(self.value, int) or float(self.value).is_integer():
            return AffineForm.constant(Fraction(int(self.value)))
        return AffineForm.constant(Fraction(self.value))

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Expr):
    """A loop variable or scalar constant, looked up by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, ctx: EvalContext) -> float:
        try:
            return ctx.scalars[self.name]
        except KeyError:
            raise NameError(f"unbound variable {self.name!r}") from None

    def affine(self) -> AffineForm | None:
        return AffineForm.variable(self.name)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class BinOp(Expr):
    """A binary arithmetic operation."""

    __slots__ = ("op", "lhs", "rhs")

    _OPS: dict[str, Callable[[float, float], float]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "//": lambda a, b: a // b,
        "%": lambda a, b: a % b,
    }

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self._OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def evaluate(self, ctx: EvalContext) -> float:
        return self._OPS[self.op](self.lhs.evaluate(ctx), self.rhs.evaluate(ctx))

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def affine(self) -> AffineForm | None:
        left = self.lhs.affine()
        right = self.rhs.affine()
        if left is None or right is None:
            return None
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            if left.is_constant:
                return right.scale(left.const)
            if right.is_constant:
                return left.scale(right.const)
            return None
        if self.op == "/":
            if right.is_constant and right.const != 0:
                return left.scale(Fraction(1) / right.const)
            return None
        # Floor division and modulo are not affine in general.  (The
        # kernels use them only in Python-level staging, never inside
        # subscripts that the classifier must analyse.)
        return None

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.lhs!r}, {self.rhs!r})"


class Call(Expr):
    """A call to a scalar math function, e.g. ``sqrt``."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, *args: Expr | int | float) -> None:
        if func not in _FUNCTIONS:
            raise ValueError(f"unknown function {func!r}")
        self.func = func
        self.args = tuple(as_expr(a) for a in args)

    def evaluate(self, ctx: EvalContext) -> float:
        return _FUNCTIONS[self.func](*(a.evaluate(ctx) for a in self.args))

    def children(self) -> Sequence[Expr]:
        return self.args

    def affine(self) -> AffineForm | None:
        return None

    def __repr__(self) -> str:
        return f"Call({self.func!r}, {', '.join(map(repr, self.args))})"


class Min(Expr):
    """Minimum of two expressions (used by a few kernels' bounds)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr | int | float, rhs: Expr | int | float) -> None:
        self.lhs = as_expr(lhs)
        self.rhs = as_expr(rhs)

    def evaluate(self, ctx: EvalContext) -> float:
        return min(self.lhs.evaluate(ctx), self.rhs.evaluate(ctx))

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def affine(self) -> AffineForm | None:
        return None


class Max(Expr):
    """Maximum of two expressions."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Expr | int | float, rhs: Expr | int | float) -> None:
        self.lhs = as_expr(lhs)
        self.rhs = as_expr(rhs)

    def evaluate(self, ctx: EvalContext) -> float:
        return max(self.lhs.evaluate(ctx), self.rhs.evaluate(ctx))

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def affine(self) -> AffineForm | None:
        return None


class Ref(Expr):
    """An array element read: ``array(sub1, sub2, ...)``.

    Subscripts are integer-valued expressions.  When a :class:`Ref`
    appears inside another subscript the access is *indirect* — the
    hallmark of the paper's Random Distribution class.
    """

    __slots__ = ("array", "subs")

    def __init__(self, array: str, subs: Sequence[Expr | int | float]) -> None:
        self.array = array
        self.subs = tuple(as_expr(s) for s in subs)
        if not self.subs:
            raise ValueError("array reference needs at least one subscript")

    def evaluate(self, ctx: EvalContext) -> float:
        idx = tuple(int(round(sub.evaluate(ctx))) for sub in self.subs)
        return ctx.read(self.array, idx)

    def children(self) -> Sequence[Expr]:
        return self.subs

    def affine(self) -> AffineForm | None:
        return None  # a read's *value* is never affine in loop vars

    def sub_affine(self) -> tuple[AffineForm, ...] | None:
        """Affine forms of every subscript, or None if any is non-affine."""
        forms = []
        for sub in self.subs:
            form = sub.affine()
            if form is None:
                return None
            forms.append(form)
        return tuple(forms)

    @property
    def is_indirect(self) -> bool:
        """True if any subscript itself reads an array."""
        return any(any(True for _ in sub.refs()) for sub in self.subs)

    def __repr__(self) -> str:
        return f"Ref({self.array!r}, {list(self.subs)!r})"


def as_expr(value: "Expr | int | float") -> Expr:
    """Coerce Python numbers to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")
