"""Vectorised trace generation for affine loop nests.

The reference interpreter walks every statement instance in Python —
exact, but linear in trace length with a large constant.  For the
common case the paper studies (loop nests whose subscripts and bounds
are *affine* in the loop variables), the whole trace can be produced
with NumPy array arithmetic instead:

1. enumerate each statement's iteration space level by level
   (triangular bounds are handled by evaluating the affine bound
   expressions against the outer iteration vectors and expanding with
   ``repeat``/``arange``),
2. evaluate every affine subscript as a dot product over the iteration
   vectors,
3. restore the exact global program order by sorting on a mixed-radix
   schedule key that encodes loop values and body positions.

The result is **bit-identical** to the interpreter's trace (asserted by
the test suite and optionally by ``validate=True``) at a fraction of
the cost — which matters because the benchmark harness regenerates
multi-million-access traces.

Kernels with indirect subscripts (the Random class) or data-dependent
staging fall back to the interpreter via :func:`fast_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from ..memory.linearize import row_major_strides
from .expr import AffineForm
from .loops import Loop, Program
from .stmt import Reduction, Statement
from .trace import Trace

__all__ = ["fast_trace", "try_vectorize_trace"]


@dataclass
class _NestInfo:
    """One statement with its enclosing loop chain."""

    stmt: Statement
    loops: list[Loop]
    # Body position of each nesting level plus the statement itself,
    # used to reconstruct interleaving order among siblings.
    positions: list[int]


def _collect(program: Program) -> list[_NestInfo] | None:
    """Flatten the program; None if structure defeats vectorisation."""
    out: list[_NestInfo] = []

    def rec(
        body: Sequence[Loop | Statement],
        loops: list[Loop],
        positions: list[int],
    ) -> bool:
        for pos, node in enumerate(body):
            if isinstance(node, Loop):
                if not rec(node.body, loops + [node], positions + [pos]):
                    return False
            else:
                out.append(_NestInfo(node, list(loops), positions + [pos]))
        return True

    if not rec(program.body, [], []):
        return None
    return out


def _affine_vector(
    form: AffineForm, columns: dict[str, np.ndarray], length: int
) -> np.ndarray | None:
    """Evaluate an affine form over iteration columns (exact integers)."""
    if form.const.denominator != 1:
        return None
    total = np.full(length, int(form.const), dtype=np.int64)
    for var, coeff in form.coeffs:
        if var not in columns:
            return None
        if coeff.denominator == 1:
            total = total + int(coeff) * columns[var]
        else:
            scaled = columns[var] * coeff.numerator
            if np.any(scaled % coeff.denominator):
                return None  # non-integer subscript would be a bug anyway
            total = total + scaled // coeff.denominator
    return total


def _iteration_columns(
    loops: list[Loop], scalars: Mapping[str, float]
) -> tuple[dict[str, np.ndarray], int] | None:
    """All iteration vectors of a (possibly triangular) nest, in order."""
    columns: dict[str, np.ndarray] = {}
    length = 1
    for loop in loops:
        lo_form = loop.lo.affine()
        hi_form = loop.hi.affine()
        if lo_form is None or hi_form is None:
            return None
        lo_form = lo_form.substitute(
            {k: AffineForm.constant(Fraction(int(v)))
             for k, v in scalars.items()
             if float(v).is_integer()}
        )
        hi_form = hi_form.substitute(
            {k: AffineForm.constant(Fraction(int(v)))
             for k, v in scalars.items()
             if float(v).is_integer()}
        )
        lo = _affine_vector(lo_form, columns, length)
        hi = _affine_vector(hi_form, columns, length)
        if lo is None or hi is None:
            return None
        step = loop.step
        if step > 0:
            trips = np.maximum(0, (hi - lo) // step + 1)
        else:
            trips = np.maximum(0, (lo - hi) // (-step) + 1)
        new_length = int(trips.sum())
        # Expand existing columns by each row's trip count.
        for name in columns:
            columns[name] = np.repeat(columns[name], trips)
        # Build the new loop variable: per row, lo, lo+step, ...
        starts = np.repeat(lo, trips)
        offsets = np.arange(new_length, dtype=np.int64)
        row_starts = np.repeat(
            np.concatenate(([0], np.cumsum(trips)[:-1])), trips
        )
        columns[loop.var] = starts + (offsets - row_starts) * step
        length = new_length
    return columns, length


def _schedule_radix(program: Program) -> tuple[dict[str, tuple[int, int]], int]:
    """Normalisation info for schedule keys: per-loop (min value, span).

    Spans are conservative (interval hull of the loop's bounds over all
    integer scalars); they only need to bound the digit range.
    """
    info: dict[str, tuple[int, int]] = {}
    int_scalars = {
        k: AffineForm.constant(Fraction(int(v)))
        for k, v in program.scalars.items()
        if float(v).is_integer()
    }

    def span_of(form: AffineForm | None) -> tuple[int, int] | None:
        if form is None:
            return None
        form = form.substitute(int_scalars)
        lo = hi = form.const
        for var, coeff in form.coeffs:
            if var not in info:
                return None
            vmin, vspan = info[var]
            vmax = vmin + vspan - 1
            if coeff >= 0:
                lo += coeff * vmin
                hi += coeff * vmax
            else:
                lo += coeff * vmax
                hi += coeff * vmin
        return int(lo), int(hi)

    max_body = 1
    for loop in program.loops():
        lo_span = span_of(loop.lo.affine())
        hi_span = span_of(loop.hi.affine())
        if lo_span is None or hi_span is None:
            info[loop.var] = (0, 0)  # marks failure downstream
            continue
        vmin = min(lo_span[0], hi_span[0])
        vmax = max(lo_span[1], hi_span[1])
        info[loop.var] = (vmin, max(1, vmax - vmin + 1))
    for loop in program.loops():
        max_body = max(max_body, len(loop.body))
    max_body = max(max_body, len(program.body))
    return info, max_body


def try_vectorize_trace(program: Program) -> Trace | None:
    """Produce the program's trace with NumPy; None if out of fragment.

    Requirements: every subscript affine in loop variables, every loop
    bound affine in outer loop variables and integer scalars.
    Reductions are supported (their instances keep the reduction mark).
    """
    nests = _collect(program)
    if nests is None:
        return None
    spans, max_body = _schedule_radix(program)
    if any(span == 0 for _, span in spans.values()):
        return None

    names = sorted(program.arrays)
    name_to_id = {name: i for i, name in enumerate(names)}
    sizes = [program.arrays[n].size for n in names]
    strides = {n: row_major_strides(program.arrays[n].shape) for n in names}

    per_stmt = []
    max_depth = max((len(n.loops) for n in nests), default=0)
    # Uniform digit width per nesting depth: statements whose loop
    # chains diverge at depth d already differ on the preceding body
    # position digit, so taking the max span keeps all keys comparable.
    depth_spans = []
    for depth in range(max_depth):
        span = 1
        for nest in nests:
            if depth < len(nest.loops):
                span = max(span, spans[nest.loops[depth].var][1])
        depth_spans.append(span)
    for nest in nests:
        stmt = nest.stmt
        # Affine forms for target and reads.
        w_forms = stmt.target.sub_affine()
        if w_forms is None:
            return None
        read_refs = list(stmt.rhs.refs())
        r_forms = []
        for ref in read_refs:
            forms = ref.sub_affine()
            if forms is None:
                return None
            r_forms.append(forms)
        cols_result = _iteration_columns(nest.loops, program.scalars)
        if cols_result is None:
            return None
        columns, length = cols_result
        if length == 0:
            continue

        def linear_flat(forms, array: str) -> np.ndarray | None:
            total = np.zeros(length, dtype=np.int64)
            shape = program.arrays[array].shape
            for axis, (form, stride) in enumerate(zip(forms, strides[array])):
                vec = _affine_vector(form, columns, length)
                if vec is None:
                    return None
                if vec.size and (vec.min() < 0 or vec.max() >= shape[axis]):
                    raise IndexError(
                        f"subscript out of bounds in {program.name!r}"
                    )
                total = total + stride * vec
            return total

        w_flat = linear_flat(w_forms, stmt.target.array)
        if w_flat is None:
            return None
        reads = []
        for ref, forms in zip(read_refs, r_forms):
            r_flat = linear_flat(forms, ref.array)
            if r_flat is None:
                return None
            reads.append((name_to_id[ref.array], r_flat))

        # Mixed-radix schedule key, most-significant digit first:
        # (pos0, v1, pos1, v2, pos2, ...): positions interleave siblings.
        key = np.zeros(length, dtype=np.int64)
        key = key * max_body + nest.positions[0]
        for depth in range(max_depth):
            if depth < len(nest.loops):
                loop = nest.loops[depth]
                vmin, span = spans[loop.var]
                if loop.step > 0:
                    digit = columns[loop.var] - vmin
                else:
                    # Descending loops execute larger values first; flip
                    # the digit so the key still follows execution order.
                    digit = (vmin + span - 1) - columns[loop.var]
                pos = nest.positions[depth + 1]
            else:
                digit = 0
                pos = 0
            key = key * depth_spans[depth] + digit
            key = key * max_body + pos
        per_stmt.append((stmt, length, w_flat, reads, key))

    if not per_stmt:
        return _empty(names, sizes)

    # Merge all statements into global program order.
    all_keys = np.concatenate([p[4] for p in per_stmt])
    order = np.argsort(all_keys, kind="stable")
    total = len(all_keys)
    stmt_ids = np.concatenate(
        [np.full(p[1], p[0].stmt_id, dtype=np.int32) for p in per_stmt]
    )[order]
    w_arr = np.concatenate(
        [
            np.full(p[1], name_to_id[p[0].target.array], dtype=np.int16)
            for p in per_stmt
        ]
    )[order]
    w_flat = np.concatenate([p[2] for p in per_stmt])[order]
    reduction = np.concatenate(
        [
            np.full(p[1], isinstance(p[0], Reduction), dtype=bool)
            for p in per_stmt
        ]
    )[order]
    # Reads: per statement, k read streams; CSR assembly after ordering.
    read_counts = np.concatenate(
        [np.full(p[1], len(p[3]), dtype=np.int64) for p in per_stmt]
    )[order]
    r_ptr = np.concatenate(([0], np.cumsum(read_counts)))
    r_arr = np.empty(int(r_ptr[-1]), dtype=np.int16)
    r_flat = np.empty(int(r_ptr[-1]), dtype=np.int64)
    # Scatter each statement's read streams into the ordered layout.
    offsets = np.concatenate(([0], np.cumsum([p[1] for p in per_stmt])))
    inverse = np.empty(total, dtype=np.int64)
    inverse[order] = np.arange(total)
    for idx, (stmt, length, _, reads, _) in enumerate(per_stmt):
        dest_rows = inverse[offsets[idx] : offsets[idx + 1]]
        base = r_ptr[dest_rows]
        for k, (arr_id, flats) in enumerate(reads):
            r_arr[base + k] = arr_id
            r_flat[base + k] = flats

    trace = Trace(
        array_names=tuple(names),
        array_sizes=tuple(sizes),
        stmt_ids=stmt_ids,
        w_arr=w_arr,
        w_flat=w_flat,
        r_ptr=r_ptr,
        r_arr=r_arr,
        r_flat=r_flat,
        reduction_mask=reduction,
    )
    trace.validate()
    return trace


def _empty(names, sizes) -> Trace:
    return Trace(
        array_names=tuple(names),
        array_sizes=tuple(sizes),
        stmt_ids=np.zeros(0, dtype=np.int32),
        w_arr=np.zeros(0, dtype=np.int16),
        w_flat=np.zeros(0, dtype=np.int64),
        r_ptr=np.zeros(1, dtype=np.int64),
        r_arr=np.zeros(0, dtype=np.int16),
        r_flat=np.zeros(0, dtype=np.int64),
        reduction_mask=np.zeros(0, dtype=bool),
    )


def fast_trace(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    *,
    validate: bool = False,
) -> Trace:
    """Vectorised trace when possible, interpreter otherwise.

    With ``validate=True`` both paths run and must agree exactly.
    """
    from .interp import run_program

    vectorised = try_vectorize_trace(program)
    if vectorised is None:
        return run_program(program, inputs).trace
    if validate:
        reference = run_program(program, inputs).trace
        _assert_equal(vectorised, reference)
    return vectorised


def _assert_equal(a: Trace, b: Trace) -> None:
    if a.array_names != b.array_names:
        raise AssertionError("array name tables differ")
    for field in ("stmt_ids", "w_arr", "w_flat", "r_ptr", "r_arr", "r_flat"):
        if not np.array_equal(getattr(a, field), getattr(b, field)):
            raise AssertionError(f"trace field {field} differs")
    if not np.array_equal(a.reduction_mask, b.reduction_mask):
        raise AssertionError("reduction masks differ")
