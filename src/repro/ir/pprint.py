"""Render IR programs back to Fortran-style source.

Useful for inspecting staged kernels (the ICCG halving loop expands to
ten concrete DO loops) and for the CLI's ``show`` command.  The output
is deliberately close to the paper's listings::

    DO k = 1, 1000
      X(k) = Q + Y(k) * (R * ZX(k + 10) + T * ZX(k + 11))
    END DO
"""

from __future__ import annotations

from .expr import BinOp, Call, Const, Expr, Max, Min, Ref, Var
from .loops import Loop, Program
from .stmt import Reduction, Statement

__all__ = ["format_expr", "format_program", "format_statement"]

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "//": 2, "%": 2}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Human-readable rendition of an expression tree."""
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Ref):
        subs = ", ".join(format_expr(s) for s in expr.subs)
        return f"{expr.array}({subs})"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func.upper()}({args})"
    if isinstance(expr, Min):
        return f"MIN({format_expr(expr.lhs)}, {format_expr(expr.rhs)})"
    if isinstance(expr, Max):
        return f"MAX({format_expr(expr.lhs)}, {format_expr(expr.rhs)})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        # Render unary negation (0 - x) compactly.
        if expr.op == "-" and isinstance(expr.lhs, Const) and expr.lhs.value == 0:
            inner = format_expr(expr.rhs, 3)
            return f"-{inner}"
        left = format_expr(expr.lhs, prec)
        # Right operand of - and / needs parens at equal precedence.
        right = format_expr(
            expr.rhs, prec + (1 if expr.op in ("-", "/", "//", "%") else 0)
        )
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot format {type(expr).__name__}")  # pragma: no cover


def format_statement(stmt: Statement) -> str:
    target = format_expr(stmt.target)
    if isinstance(stmt, Reduction):
        op = stmt.op if stmt.op in ("+", "*") else f" {stmt.op} "
        return f"{target} = {target} {op} {format_expr(stmt.rhs)}"
    return f"{target} = {format_expr(stmt.rhs)}"


def format_program(program: Program, *, declarations: bool = True) -> str:
    """The whole program as indented DO-loop pseudo-Fortran."""
    lines: list[str] = []
    if declarations:
        lines.append(f"PROGRAM {program.name}")
        for name in sorted(program.arrays):
            decl = program.arrays[name]
            dims = ", ".join(str(d) for d in decl.shape)
            lines.append(f"  REAL {name}({dims})  ! {decl.role}")
        for name in sorted(program.scalars):
            lines.append(
                f"  PARAMETER {name} = {program.scalars[name]!r}"
            )
        lines.append("")

    def rec(body, depth: int) -> None:
        pad = "  " * depth
        for node in body:
            if isinstance(node, Loop):
                step = f", {node.step}" if node.step != 1 else ""
                lines.append(
                    f"{pad}DO {node.var} = {format_expr(node.lo)}, "
                    f"{format_expr(node.hi)}{step}"
                )
                rec(node.body, depth + 1)
                lines.append(f"{pad}END DO")
            else:
                lines.append(pad + format_statement(node))

    rec(program.body, 1 if declarations else 0)
    if declarations:
        lines.append("END PROGRAM")
    return "\n".join(lines)
