"""Trace-specializing super-ops: cost O(unique behavior), not O(n).

Stencil sweeps repeat one loop body millions of times with only the
addresses sliding by a constant stride.  This module detects those
cycles in a frozen :class:`~repro.ir.trace.Trace` (the tracing-JIT
idiom: find the hot back-edge, record one body, execute the
specialized form), collapses each run into a parameterized
:class:`SuperOp` — one body of statement instances plus a trip count
and per-access strides — and packages the result as a
:class:`SuperOpTrace`: the ordered mix of super-ops and the residual
flat instances they do not cover.

Detection is *exact*: a candidate cycle found by hashing the
per-instance access skeleton is verified column-by-column (same
statement ids, same written arrays, affine write/read addresses,
identical read structure) and truncated to the longest prefix of trips
that verifies, so ``compact(trace).expand()`` reproduces the original
trace bit-for-bit — dtypes included.  Imperfect tails and interludes
stay in the residual.  The replay engines
(:mod:`repro.core.superop_replay`, ``TimedMachine.run_compacted``)
exploit the closed form; the store format v2
(:meth:`repro.ir.trace.Trace.save`) persists it at O(unique behavior)
size.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from .trace import Trace

__all__ = ["SuperOp", "SuperOpTrace", "compact"]

#: Hash multipliers for the per-instance access skeleton.  Collisions
#: are harmless (candidates are verified exactly); they only waste a
#: verification pass.
_M_STMT = np.int64(1000003)
_M_WARR = np.int64(8191)
_M_MASK = np.int64(131071)
_M_RPI = np.int64(524287)
_M_READ = np.int64(0x9E3779B1)


@dataclass(frozen=True)
class SuperOp:
    """``trips`` repetitions of a ``body_len``-instance body.

    The body columns hold trip 0 verbatim; trip ``k`` of the cycle is
    the body with ``k * w_stride`` / ``k * r_stride`` added to the
    write / read addresses (strides may be zero — reduction
    accumulators repeat the same cell).  ``start`` is the first
    covered instance index in the flat trace.
    """

    start: int
    body_len: int
    trips: int
    b_stmt: np.ndarray  # int32[body_len]
    b_w_arr: np.ndarray  # int16[body_len]
    b_w_flat: np.ndarray  # int64[body_len] — trip-0 write addresses
    b_mask: np.ndarray  # bool[body_len]
    b_r_ptr: np.ndarray  # int64[body_len + 1] — body-local CSR
    b_r_arr: np.ndarray  # int16[n_body_reads]
    b_r_flat: np.ndarray  # int64[n_body_reads] — trip-0 read addresses
    w_stride: np.ndarray  # int64[body_len] — per-trip write deltas
    r_stride: np.ndarray  # int64[n_body_reads] — per-trip read deltas

    @property
    def n_body_reads(self) -> int:
        return len(self.b_r_arr)

    @property
    def span(self) -> int:
        """Flat instances covered: ``body_len * trips``."""
        return self.body_len * self.trips


@dataclass(frozen=True)
class SuperOpTrace:
    """A trace as an ordered mix of super-ops and residual instances.

    ``ops`` are non-overlapping and sorted by ``start``; the ``f_*``
    columns hold the uncovered instances in original order with their
    own CSR read structure.  :meth:`expand` (memoised) reconstructs
    the flat :class:`Trace` bit-identically; :meth:`segments` yields
    the trace-order walk the replay engines follow.
    """

    array_names: tuple[str, ...]
    array_sizes: tuple[int, ...]
    n_instances: int
    ops: tuple[SuperOp, ...]
    f_stmt: np.ndarray
    f_w_arr: np.ndarray
    f_w_flat: np.ndarray
    f_mask: np.ndarray
    f_r_ptr: np.ndarray
    f_r_arr: np.ndarray
    f_r_flat: np.ndarray

    @property
    def n_residual(self) -> int:
        return len(self.f_stmt)

    @property
    def n_stored_rows(self) -> int:
        """Instance rows a v2 file stores: bodies + residual."""
        return sum(op.body_len for op in self.ops) + self.n_residual

    @property
    def coverage(self) -> float:
        """Fraction of instances captured by super-ops."""
        if self.n_instances == 0:
            return 0.0
        return 1.0 - self.n_residual / self.n_instances

    @property
    def has_reductions(self) -> bool:
        return bool(self.f_mask.any()) or any(
            bool(op.b_mask.any()) for op in self.ops
        )

    def segments(self) -> tuple[tuple, ...]:
        """Trace-order walk: ``("flat", lo, hi)`` residual-row ranges
        (indices into the ``f_*`` instance columns) interleaved with
        ``("op", op)`` entries.  Memoised."""
        cached = self.__dict__.get("_segments")
        if cached is not None:
            return cached
        segs: list[tuple] = []
        cursor = 0  # original instance index
        f_cursor = 0  # residual row index
        for op in self.ops:
            if op.start > cursor:
                count = op.start - cursor
                segs.append(("flat", f_cursor, f_cursor + count))
                f_cursor += count
            segs.append(("op", op))
            cursor = op.start + op.span
        if cursor < self.n_instances:
            segs.append(
                ("flat", f_cursor, f_cursor + self.n_instances - cursor)
            )
        result = tuple(segs)
        object.__setattr__(self, "_segments", result)
        return result

    def expand(self) -> Trace:
        """The bit-identical flat :class:`Trace` (memoised)."""
        cached = self.__dict__.get("_expanded")
        if cached is not None:
            return cached
        stmt: list[np.ndarray] = []
        w_arr: list[np.ndarray] = []
        w_flat: list[np.ndarray] = []
        mask: list[np.ndarray] = []
        rpi: list[np.ndarray] = []
        r_arr: list[np.ndarray] = []
        r_flat: list[np.ndarray] = []
        for seg in self.segments():
            if seg[0] == "flat":
                _, lo, hi = seg
                stmt.append(self.f_stmt[lo:hi])
                w_arr.append(self.f_w_arr[lo:hi])
                w_flat.append(self.f_w_flat[lo:hi])
                mask.append(self.f_mask[lo:hi])
                rpi.append(np.diff(self.f_r_ptr[lo : hi + 1]))
                r_arr.append(self.f_r_arr[self.f_r_ptr[lo] : self.f_r_ptr[hi]])
                r_flat.append(
                    self.f_r_flat[self.f_r_ptr[lo] : self.f_r_ptr[hi]]
                )
            else:
                op = seg[1]
                m = op.trips
                k = np.arange(m, dtype=np.int64)[:, None]
                stmt.append(np.tile(op.b_stmt, m))
                w_arr.append(np.tile(op.b_w_arr, m))
                w_flat.append(
                    (op.b_w_flat[None, :] + k * op.w_stride[None, :]).ravel()
                )
                mask.append(np.tile(op.b_mask, m))
                rpi.append(np.tile(np.diff(op.b_r_ptr), m))
                r_arr.append(np.tile(op.b_r_arr, m))
                r_flat.append(
                    (op.b_r_flat[None, :] + k * op.r_stride[None, :]).ravel()
                )

        def cat(parts: list[np.ndarray], dtype) -> np.ndarray:
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        all_rpi = cat(rpi, np.int64)
        r_ptr = np.zeros(len(all_rpi) + 1, dtype=np.int64)
        np.cumsum(all_rpi, out=r_ptr[1:])
        trace = Trace(
            array_names=self.array_names,
            array_sizes=self.array_sizes,
            stmt_ids=cat(stmt, np.int32),
            w_arr=cat(w_arr, np.int16),
            w_flat=cat(w_flat, np.int64),
            r_ptr=r_ptr,
            r_arr=cat(r_arr, np.int16),
            r_flat=cat(r_flat, np.int64),
            reduction_mask=cat(mask, bool),
        )
        object.__setattr__(self, "_expanded", trace)
        return trace

    # -- persistence payload (store format v2) ---------------------------------
    def to_payload(self) -> dict[str, np.ndarray]:
        """npz columns for a v2 file (see :meth:`Trace.save`)."""
        ops = self.ops

        def cat(parts, dtype):
            parts = [p for p in parts]
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        body_rpi = cat([np.diff(op.b_r_ptr) for op in ops], np.int64)
        so_b_r_ptr = np.zeros(len(body_rpi) + 1, dtype=np.int64)
        np.cumsum(body_rpi, out=so_b_r_ptr[1:])
        return {
            "so_start": np.array([op.start for op in ops], dtype=np.int64),
            "so_body_len": np.array(
                [op.body_len for op in ops], dtype=np.int64
            ),
            "so_trips": np.array([op.trips for op in ops], dtype=np.int64),
            "so_b_stmt": cat([op.b_stmt for op in ops], np.int32),
            "so_b_w_arr": cat([op.b_w_arr for op in ops], np.int16),
            "so_b_w_flat": cat([op.b_w_flat for op in ops], np.int64),
            "so_b_mask": cat([op.b_mask for op in ops], bool),
            "so_b_r_ptr": so_b_r_ptr,
            "so_b_r_arr": cat([op.b_r_arr for op in ops], np.int16),
            "so_b_r_flat": cat([op.b_r_flat for op in ops], np.int64),
            "so_w_stride": cat([op.w_stride for op in ops], np.int64),
            "so_r_stride": cat([op.r_stride for op in ops], np.int64),
            "f_stmt": self.f_stmt,
            "f_w_arr": self.f_w_arr,
            "f_w_flat": self.f_w_flat,
            "f_mask": self.f_mask,
            "f_r_ptr": self.f_r_ptr,
            "f_r_arr": self.f_r_arr,
            "f_r_flat": self.f_r_flat,
        }

    @classmethod
    def from_payload(
        cls,
        array_names: tuple[str, ...],
        array_sizes: tuple[int, ...],
        n_instances: int,
        data,
    ) -> "SuperOpTrace":
        """Inverse of :meth:`to_payload` (``data`` is npz-like)."""
        starts = data["so_start"]
        body_lens = data["so_body_len"]
        trips = data["so_trips"]
        row_ptr = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(body_lens, out=row_ptr[1:])
        b_r_ptr_all = data["so_b_r_ptr"]
        ops = []
        for i in range(len(starts)):
            lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
            r_lo = int(b_r_ptr_all[lo])
            r_hi = int(b_r_ptr_all[hi])
            ops.append(
                SuperOp(
                    start=int(starts[i]),
                    body_len=int(body_lens[i]),
                    trips=int(trips[i]),
                    b_stmt=data["so_b_stmt"][lo:hi],
                    b_w_arr=data["so_b_w_arr"][lo:hi],
                    b_w_flat=data["so_b_w_flat"][lo:hi],
                    b_mask=data["so_b_mask"][lo:hi],
                    b_r_ptr=(b_r_ptr_all[lo : hi + 1] - r_lo).astype(
                        np.int64
                    ),
                    b_r_arr=data["so_b_r_arr"][r_lo:r_hi],
                    b_r_flat=data["so_b_r_flat"][r_lo:r_hi],
                    w_stride=data["so_w_stride"][lo:hi],
                    r_stride=data["so_r_stride"][r_lo:r_hi],
                )
            )
        return cls(
            array_names=array_names,
            array_sizes=array_sizes,
            n_instances=n_instances,
            ops=tuple(ops),
            f_stmt=data["f_stmt"],
            f_w_arr=data["f_w_arr"],
            f_w_flat=data["f_w_flat"],
            f_mask=data["f_mask"],
            f_r_ptr=data["f_r_ptr"],
            f_r_arr=data["f_r_arr"],
            f_r_flat=data["f_r_flat"],
        )

    def describe(self) -> dict[str, object]:
        """Summary for CLI/tool output."""
        return {
            "n_instances": self.n_instances,
            "n_ops": len(self.ops),
            "n_stored_rows": self.n_stored_rows,
            "coverage": round(self.coverage, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SuperOpTrace({len(self.ops)} ops, "
            f"{self.n_stored_rows}/{self.n_instances} rows, "
            f"coverage {self.coverage:.1%})"
        )


def _struct_hash(trace: Trace) -> np.ndarray:
    """Per-instance access-skeleton hash (int64, wraparound).

    Two instances that could be consecutive trips of one body hash
    equal: same statement, same written array, same reduction flag and
    the same read structure (count, arrays, positions).  Addresses are
    deliberately excluded — they vary affinely across trips and are
    checked exactly during verification.
    """
    rpi = np.diff(trace.r_ptr)
    h = trace.stmt_ids.astype(np.int64) * _M_STMT
    h += trace.w_arr.astype(np.int64) * _M_WARR
    h += trace.reduction_mask.astype(np.int64) * _M_MASK
    h += rpi * _M_RPI
    if trace.n_reads:
        pos = np.arange(trace.n_reads, dtype=np.int64) - np.repeat(
            trace.r_ptr[:-1], rpi
        )
        vals = (trace.r_arr.astype(np.int64) + 1) * ((pos + 1) * _M_READ)
        csum = np.zeros(len(vals) + 1, dtype=np.int64)
        np.cumsum(vals, out=csum[1:])
        h += csum[trace.r_ptr[1:]] - csum[trace.r_ptr[:-1]]
    return h


def _good_prefix(ok_rows: np.ndarray) -> int:
    """Count of leading True rows."""
    bad = np.flatnonzero(~ok_rows)
    return int(bad[0]) if bad.size else len(ok_rows)


def _verify(trace: Trace, s: int, p: int, m: int, min_trips: int):
    """Exact column verification of an ``m``-trip period-``p`` cycle
    at instance ``s``; returns a :class:`SuperOp` for the longest
    verified trip prefix, or None below ``min_trips``."""

    def rows_equal(col: np.ndarray, trips: int) -> int:
        rows = col[s : s + trips * p].reshape(trips, p)
        return _good_prefix((rows == rows[0]).all(axis=1))

    def affine(col: np.ndarray, trips: int) -> tuple[int, np.ndarray]:
        rows = col[s : s + trips * p].reshape(trips, p)
        stride = rows[1] - rows[0]
        k = np.arange(trips, dtype=np.int64)[:, None]
        ok = (rows == rows[0][None, :] + k * stride[None, :]).all(axis=1)
        return _good_prefix(ok), stride

    for col in (trace.stmt_ids, trace.w_arr, trace.reduction_mask):
        m = rows_equal(col, m)
        if m < min_trips:
            return None
    rpi = np.diff(trace.r_ptr)
    m = rows_equal(rpi, m)
    if m < min_trips:
        return None
    m, w_stride = affine(trace.w_flat, m)
    if m < min_trips:
        return None

    lo = int(trace.r_ptr[s])
    n_body_reads = int(trace.r_ptr[s + p]) - lo
    if n_body_reads:
        # Equal per-instance read counts across the verified trips
        # guarantee the read slab reshapes cleanly: trips x body-reads.
        def read_rows(col: np.ndarray, trips: int) -> np.ndarray:
            return col[lo : lo + trips * n_body_reads].reshape(
                trips, n_body_reads
            )

        rows = read_rows(trace.r_arr, m)
        m = _good_prefix((rows == rows[0]).all(axis=1))
        if m < min_trips:
            return None
        rows = read_rows(trace.r_flat, m)
        r_stride = rows[1] - rows[0]
        k = np.arange(m, dtype=np.int64)[:, None]
        ok = (rows == rows[0][None, :] + k * r_stride[None, :]).all(axis=1)
        m = _good_prefix(ok)
        if m < min_trips:
            return None
        r_stride = r_stride.astype(np.int64)
    else:
        r_stride = np.zeros(0, dtype=np.int64)

    return SuperOp(
        start=s,
        body_len=p,
        trips=m,
        b_stmt=trace.stmt_ids[s : s + p].copy(),
        b_w_arr=trace.w_arr[s : s + p].copy(),
        b_w_flat=trace.w_flat[s : s + p].copy(),
        b_mask=trace.reduction_mask[s : s + p].copy(),
        b_r_ptr=(trace.r_ptr[s : s + p + 1] - lo).astype(np.int64),
        b_r_arr=trace.r_arr[lo : lo + n_body_reads].copy(),
        b_r_flat=trace.r_flat[lo : lo + n_body_reads].copy(),
        w_stride=w_stride.astype(np.int64),
        r_stride=r_stride,
    )


def compact(
    trace: Trace, *, min_trips: int = 4, max_period: int = 32
) -> SuperOpTrace:
    """Detect repeated-body cycles in ``trace`` and collapse them.

    Greedy, smallest period first: a period-``p`` candidate is any
    maximal run of instances whose skeleton hash equals its ``p``-th
    successor's; each candidate is verified exactly and truncated to
    the trip prefix that verifies.  Accepted cycles mark their span
    covered, so nested repetition collapses innermost-first and later
    scans work on the remainder.  ``compact(t).expand()`` is always
    bit-identical to ``t``.
    """
    if min_trips < 2:
        raise ValueError("min_trips must be at least 2")
    if max_period < 1:
        raise ValueError("max_period must be at least 1")
    n = trace.n_instances
    ops: list[SuperOp] = []
    covered = np.zeros(n, dtype=bool)
    if n >= 2 * min_trips:
        struct = _struct_hash(trace)
        for p in range(1, max_period + 1):
            if p * min_trips > n:
                break
            eq = struct[p:] == struct[:-p]
            eq &= ~covered[p:]
            eq &= ~covered[:-p]
            idx = np.flatnonzero(eq)
            if idx.size == 0:
                continue
            breaks = np.flatnonzero(np.diff(idx) > 1)
            run_los = np.concatenate(([0], breaks + 1))
            run_his = np.concatenate((breaks, [idx.size - 1]))
            for rl, rh in zip(run_los.tolist(), run_his.tolist()):
                s = int(idx[rl])
                span = int(idx[rh]) + 1 + p - s
                m = span // p
                if m < min_trips:
                    continue
                # Clamp to the uncovered prefix: an op accepted earlier
                # in this same scan may overlap the tail of this run.
                hit = np.flatnonzero(covered[s : s + m * p])
                if hit.size:
                    m = int(hit[0]) // p
                    if m < min_trips:
                        continue
                op = _verify(trace, s, p, m, min_trips)
                if op is None:
                    continue
                ops.append(op)
                covered[op.start : op.start + op.span] = True
    ops.sort(key=lambda op: op.start)

    keep = ~covered
    rpi = np.diff(trace.r_ptr)
    read_keep = (
        np.repeat(keep, rpi)
        if trace.n_reads
        else np.zeros(0, dtype=bool)
    )
    f_rpi = rpi[keep]
    f_r_ptr = np.zeros(len(f_rpi) + 1, dtype=np.int64)
    np.cumsum(f_rpi, out=f_r_ptr[1:])
    return SuperOpTrace(
        array_names=trace.array_names,
        array_sizes=trace.array_sizes,
        n_instances=n,
        ops=tuple(ops),
        f_stmt=trace.stmt_ids[keep],
        f_w_arr=trace.w_arr[keep],
        f_w_flat=trace.w_flat[keep],
        f_mask=trace.reduction_mask[keep],
        f_r_ptr=f_r_ptr,
        f_r_arr=trace.r_arr[read_keep],
        f_r_flat=trace.r_flat[read_keep],
    )


def payload_meta(sot: SuperOpTrace) -> str:
    """The embedded JSON document of a v2 trace file."""
    from .trace import TRACE_FORMAT_VERSION

    return json.dumps(
        {
            "format_version": TRACE_FORMAT_VERSION,
            "layout": "superops",
            "array_names": list(sot.array_names),
            "array_sizes": list(sot.array_sizes),
            "n_instances": sot.n_instances,
        }
    )
