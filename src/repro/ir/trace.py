"""Access traces: the interface between interpretation and simulation.

The paper's evaluation is *trace driven*: a kernel is executed once,
every array-element access is recorded in program order, and the
multiprocessor simulation then classifies each access as write / local
read / cached read / remote read for a given machine configuration
(§6).  Because the trace depends only on the program and its data — not
on the number of PEs, the page size, or the cache — one trace serves an
entire parameter sweep.

A :class:`Trace` stores one record per executed statement *instance*:
the statement id, the written element (array id + flattened element
index) and the list of read elements.  Reads are stored CSR-style
(``r_ptr`` offsets into flat ``r_arr``/``r_flat`` arrays) so that the
simulator can vectorise owner computations with NumPy.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "TRACE_DIGEST_VERSION",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceBuilder",
    "TraceColumns",
]

#: On-disk ``.npz`` layout version.  Version 1 is the flat columnar
#: layout; version 2 adds the super-op layout (repeated loop bodies
#: stored once with trip counts and strides — see
#: :mod:`repro.ir.superops`).  :meth:`Trace.load` reads both and
#: refuses anything else so a stale store entry can never be misread
#: silently.
TRACE_FORMAT_VERSION = 2

#: Semantic version of trace *content*, used in digests (both
#: :attr:`Trace.content_digest` and the store's build-parameter keys).
#: Deliberately decoupled from :data:`TRACE_FORMAT_VERSION`: the v2
#: layout reads back losslessly, so re-encoding a trace must not
#: change its identity or orphan existing store entries.  Bump only
#: when identical build parameters would yield semantically different
#: traces.
TRACE_DIGEST_VERSION = 1

#: ``save()`` only attempts cycle detection on traces at least this
#: long — compaction pays off on sweep-scale traces, not unit-test
#: fixtures.
_AUTO_COMPACT_MIN = 512

#: The numpy columns of a trace, in canonical order.
_COLUMNS = (
    "stmt_ids",
    "w_arr",
    "w_flat",
    "r_ptr",
    "r_arr",
    "r_flat",
    "reduction_mask",
)


@dataclass(frozen=True)
class TraceColumns:
    """Configuration-independent columnar expansion of a trace.

    The simulators flatten the CSR read structure into one row per
    read — ``r_instance`` maps each read back to its statement
    instance, so any per-instance column (the executing PE above all)
    expands to per-read shape by plain fancy indexing.  None of this
    depends on the machine configuration, so one expansion serves an
    entire parameter sweep; :meth:`Trace.columnar` memoises it on the
    trace.  The vectorised replay engine
    (:mod:`repro.core.vec_simulator`) is the main consumer.
    """

    #: ``int64[n_instances]`` — reads per statement instance.
    reads_per_instance: np.ndarray
    #: ``int64[n_reads]`` — owning instance of each read row.
    r_instance: np.ndarray
    #: ``int64[n_reads]`` — read array ids, widened once for composite
    #: (array, page) key arithmetic.
    r_arr64: np.ndarray


@dataclass(frozen=True)
class Trace:
    """An immutable, frozen access trace.

    Attributes
    ----------
    array_names:
        Maps array id (small int) to the array's name.
    array_sizes:
        Flattened element count per array id.
    stmt_ids:
        ``int32[n_instances]`` — originating statement of each instance.
    w_arr, w_flat:
        Written element of each instance (array id, flat element index).
    r_ptr:
        ``int64[n_instances + 1]`` — CSR offsets into the read arrays.
    r_arr, r_flat:
        Concatenated read accesses in evaluation order.
    reduction_mask:
        ``bool[n_instances]`` — True where the instance belongs to a
        :class:`~repro.ir.stmt.Reduction` (the write target is re-used,
        which is exempt from the single-assignment write-once rule).
    """

    array_names: tuple[str, ...]
    array_sizes: tuple[int, ...]
    stmt_ids: np.ndarray
    w_arr: np.ndarray
    w_flat: np.ndarray
    r_ptr: np.ndarray
    r_arr: np.ndarray
    r_flat: np.ndarray
    reduction_mask: np.ndarray

    @property
    def n_instances(self) -> int:
        return len(self.stmt_ids)

    @property
    def content_digest(self) -> str:
        """sha256 over the trace's full content (memoised).

        Covers the format version, array names/sizes and every column's
        dtype and bytes — two traces share a digest iff they are
        :meth:`identical`.  This addresses *in-memory* traces (the
        ``evaluate_scenario`` path) in the result cache, where
        store-registered traces use :class:`~repro.engine.store.TraceKey`'s
        build-parameter digest; the namespaces never collide because a
        key's digest hashes a JSON document, not raw column bytes.
        """
        import hashlib

        cached = self.__dict__.get("_content_digest")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(
            json.dumps(
                {
                    "format_version": TRACE_DIGEST_VERSION,
                    "array_names": list(self.array_names),
                    "array_sizes": list(self.array_sizes),
                },
                sort_keys=True,
            ).encode()
        )
        for name in _COLUMNS:
            column = np.ascontiguousarray(getattr(self, name))
            h.update(name.encode())
            h.update(str(column.dtype).encode())
            h.update(column.tobytes())
        digest = h.hexdigest()
        object.__setattr__(self, "_content_digest", digest)
        return digest

    @property
    def n_reads(self) -> int:
        return len(self.r_flat)

    def array_id(self, name: str) -> int:
        return self.array_names.index(name)

    def columnar(self) -> TraceColumns:
        """The memoised columnar view (see :class:`TraceColumns`)."""
        cached = self.__dict__.get("_columns")
        if cached is None:
            reads_per_instance = np.diff(self.r_ptr)
            cached = TraceColumns(
                reads_per_instance=reads_per_instance,
                r_instance=np.repeat(
                    np.arange(self.n_instances, dtype=np.int64),
                    reads_per_instance,
                ),
                r_arr64=self.r_arr.astype(np.int64),
            )
            object.__setattr__(self, "_columns", cached)
        return cached

    # -- super-op view ---------------------------------------------------------
    def attach_superops(self, superops) -> None:
        """Memoise a verified super-op view of this trace.

        The view (:class:`repro.ir.superops.SuperOpTrace`) is attached
        by ``load()`` of a v2 file and by ``save()``'s auto-compaction,
        so replay backends can take the O(unique behavior) path without
        re-detecting cycles.  The flat columns stay authoritative —
        the view is an acceleration structure, never a substitute.
        """
        object.__setattr__(self, "_superops", superops)

    def attached_superops(self):
        """The attached super-op view, or None (see
        :meth:`attach_superops`)."""
        return self.__dict__.get("_superops")

    def reads_of(self, instance: int) -> list[tuple[int, int]]:
        """(array id, flat index) pairs read by one instance."""
        lo, hi = self.r_ptr[instance], self.r_ptr[instance + 1]
        return list(zip(self.r_arr[lo:hi].tolist(), self.r_flat[lo:hi].tolist()))

    def instances(self) -> Iterator[tuple[int, int, int, list[tuple[int, int]]]]:
        """Yield (stmt_id, write array, write flat, reads) per instance."""
        for i in range(self.n_instances):
            yield (
                int(self.stmt_ids[i]),
                int(self.w_arr[i]),
                int(self.w_flat[i]),
                self.reads_of(i),
            )

    # -- persistence -----------------------------------------------------------
    def _superops_for_save(self, compact: bool | None):
        """The super-op view ``save()`` should persist, or None.

        ``compact=None`` (the default) is automatic: reuse an attached
        view, or run detection once on traces long enough to be worth
        it (the no-cycles outcome is attached too, so repeated saves
        never re-scan).  ``compact=True`` forces detection;
        ``compact=False`` forces the flat v1 layout.
        """
        if compact is False:
            return None
        superops = self.attached_superops()
        if superops is None and (
            compact is True or self.n_instances >= _AUTO_COMPACT_MIN
        ):
            from .superops import compact as _compact

            superops = _compact(self)
            self.attach_superops(superops)
        if superops is None or not superops.ops:
            return None
        # Only the super-op layout when it actually pays: the v2 file
        # stores one row per body instance plus the residual.
        if superops.n_stored_rows > self.n_instances // 2:
            return None
        return superops

    def save(
        self, path: str | os.PathLike, *, compact: bool | None = None
    ) -> Path:
        """Serialise to a compressed ``.npz`` file (atomic replace).

        The numpy columns keep their exact dtypes; names, sizes and the
        format version travel as an embedded JSON document.  The write
        goes through a temporary file in the destination directory so
        concurrent writers (parallel sweep workers, several processes
        warming one trace store) can never leave a torn file behind.

        When the trace compacts well (see :mod:`repro.ir.superops`),
        the file uses the super-op layout of format v2 — repeated loop
        bodies stored once with trip counts and strides, orders of
        magnitude smaller on sweep traces.  ``compact`` overrides the
        automatic choice (True forces detection, False forces the flat
        layout); either way :meth:`load` returns the bit-identical
        trace.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        superops = self._superops_for_save(compact)
        if superops is not None:
            from .superops import payload_meta

            meta = payload_meta(superops)
            payload = superops.to_payload()
        else:
            meta = json.dumps(
                {
                    "format_version": TRACE_FORMAT_VERSION,
                    "layout": "flat",
                    "array_names": list(self.array_names),
                    "array_sizes": list(self.array_sizes),
                }
            )
            payload = {name: getattr(self, name) for name in _COLUMNS}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, meta=np.array(meta), **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Trace":
        """Load a trace saved by :meth:`save` (validated, exact dtypes).

        Reads the flat layout (format v1, and v2 files that did not
        compact) and the super-op layout (v2) transparently; a
        super-op file expands to the bit-identical flat trace with the
        view attached for the replay fast paths.
        """
        with np.load(Path(path), allow_pickle=False) as data:
            try:
                meta = json.loads(str(data["meta"][()]))
            except KeyError as exc:
                raise ValueError(f"not a trace file: missing {exc}") from None
            version = meta.get("format_version")
            if version not in (1, TRACE_FORMAT_VERSION):
                raise ValueError(
                    f"unsupported trace format version {version!r} "
                    f"(expected <= {TRACE_FORMAT_VERSION})"
                )
            try:
                if meta.get("layout", "flat") == "superops":
                    from .superops import SuperOpTrace

                    superops = SuperOpTrace.from_payload(
                        array_names=tuple(meta["array_names"]),
                        array_sizes=tuple(
                            int(s) for s in meta["array_sizes"]
                        ),
                        n_instances=int(meta["n_instances"]),
                        data=data,
                    )
                    trace = superops.expand()
                    trace.attach_superops(superops)
                    trace.validate()
                    return trace
                columns = {name: data[name] for name in _COLUMNS}
            except KeyError as exc:
                raise ValueError(f"not a trace file: missing {exc}") from None
        trace = cls(
            array_names=tuple(meta["array_names"]),
            array_sizes=tuple(int(s) for s in meta["array_sizes"]),
            **columns,
        )
        trace.validate()
        return trace

    def identical(self, other: "Trace") -> bool:
        """Bit-exact equality: same metadata, same arrays, same dtypes."""
        if (
            self.array_names != other.array_names
            or self.array_sizes != other.array_sizes
        ):
            return False
        for field in _COLUMNS:
            mine, theirs = getattr(self, field), getattr(other, field)
            if mine.dtype != theirs.dtype or not np.array_equal(mine, theirs):
                return False
        return True

    def validate(self) -> None:
        """Internal-consistency checks (used by tests)."""
        n = self.n_instances
        if len(self.w_arr) != n or len(self.w_flat) != n:
            raise ValueError("write columns length mismatch")
        if len(self.r_ptr) != n + 1:
            raise ValueError("r_ptr length mismatch")
        if self.r_ptr[0] != 0 or self.r_ptr[-1] != self.n_reads:
            raise ValueError("r_ptr endpoints mismatch")
        if np.any(np.diff(self.r_ptr) < 0):
            raise ValueError("r_ptr must be nondecreasing")
        for col_arr, col_flat in ((self.w_arr, self.w_flat), (self.r_arr, self.r_flat)):
            if len(col_arr) == 0:
                continue
            if col_arr.min() < 0 or col_arr.max() >= len(self.array_names):
                raise ValueError("array id out of range")
            sizes = np.asarray(self.array_sizes)[col_arr]
            if np.any(col_flat < 0) or np.any(col_flat >= sizes):
                raise ValueError("flat element index out of range")


class TraceBuilder:
    """Accumulates accesses during interpretation; ``freeze()`` → Trace."""

    def __init__(self, array_names: Sequence[str], array_sizes: Sequence[int]) -> None:
        if len(array_names) != len(array_sizes):
            raise ValueError("names/sizes length mismatch")
        self.array_names = tuple(array_names)
        self.array_sizes = tuple(int(s) for s in array_sizes)
        self._ids = {name: i for i, name in enumerate(self.array_names)}
        self._stmt_ids: list[int] = []
        self._w_arr: list[int] = []
        self._w_flat: list[int] = []
        self._r_ptr: list[int] = [0]
        self._r_arr: list[int] = []
        self._r_flat: list[int] = []
        self._reduction: list[bool] = []
        # reads staged for the instance currently being evaluated
        self._pending_r_arr: list[int] = []
        self._pending_r_flat: list[int] = []

    def array_id(self, name: str) -> int:
        return self._ids[name]

    def record_read(self, array_id: int, flat: int) -> None:
        self._pending_r_arr.append(array_id)
        self._pending_r_flat.append(flat)

    def commit_instance(
        self, stmt_id: int, w_array_id: int, w_flat: int, is_reduction: bool
    ) -> None:
        """Finish one statement instance, attaching the staged reads."""
        self._stmt_ids.append(stmt_id)
        self._w_arr.append(w_array_id)
        self._w_flat.append(w_flat)
        self._r_arr.extend(self._pending_r_arr)
        self._r_flat.extend(self._pending_r_flat)
        self._r_ptr.append(len(self._r_arr))
        self._reduction.append(is_reduction)
        self._pending_r_arr.clear()
        self._pending_r_flat.clear()

    def abort_instance(self) -> None:
        """Discard staged reads (used on evaluation errors)."""
        self._pending_r_arr.clear()
        self._pending_r_flat.clear()

    def freeze(self) -> Trace:
        if self._pending_r_arr:
            raise RuntimeError("uncommitted reads at freeze()")
        trace = Trace(
            array_names=self.array_names,
            array_sizes=self.array_sizes,
            stmt_ids=np.asarray(self._stmt_ids, dtype=np.int32),
            w_arr=np.asarray(self._w_arr, dtype=np.int16),
            w_flat=np.asarray(self._w_flat, dtype=np.int64),
            r_ptr=np.asarray(self._r_ptr, dtype=np.int64),
            r_arr=np.asarray(self._r_arr, dtype=np.int16),
            r_flat=np.asarray(self._r_flat, dtype=np.int64),
            reduction_mask=np.asarray(self._reduction, dtype=bool),
        )
        trace.validate()
        return trace
