"""Loop-nest intermediate representation for single-assignment kernels.

This subpackage is the "frontend" substrate of the reproduction: the
Livermore Loops are written against it, the interpreter executes them
to produce access traces, and the static analyses (single-assignment
checking, access-pattern classification) consume it.
"""

from .builder import ArrayHandle, ProgramBuilder
from .expr import (
    AffineForm,
    BinOp,
    Call,
    Const,
    EvalContext,
    Expr,
    Max,
    Min,
    Ref,
    Var,
    as_expr,
)
from .interp import (
    InterpResult,
    Interpreter,
    SingleAssignmentError,
    UndefinedReadError,
    run_program,
)
from .loops import ArrayDecl, Loop, Program
from .sa_check import CheckReport, Finding, Verdict, check_program
from .stmt import Assign, Reduction, Statement
from .superops import SuperOp, SuperOpTrace, compact
from .trace import Trace, TraceBuilder
from .translate import (
    TranslationError,
    auto_convert,
    expand_array,
    expansion_cost,
    rewrite_expr,
)
from .pprint import format_expr, format_program, format_statement
from .vectorize import fast_trace, try_vectorize_trace

__all__ = [
    "AffineForm",
    "ArrayDecl",
    "ArrayHandle",
    "Assign",
    "BinOp",
    "Call",
    "CheckReport",
    "Const",
    "EvalContext",
    "Expr",
    "Finding",
    "InterpResult",
    "Interpreter",
    "Loop",
    "Max",
    "Min",
    "Program",
    "ProgramBuilder",
    "Reduction",
    "Ref",
    "SingleAssignmentError",
    "Statement",
    "SuperOp",
    "SuperOpTrace",
    "Trace",
    "TraceBuilder",
    "TranslationError",
    "UndefinedReadError",
    "Var",
    "Verdict",
    "as_expr",
    "auto_convert",
    "check_program",
    "compact",
    "expand_array",
    "expansion_cost",
    "fast_trace",
    "format_expr",
    "format_program",
    "format_statement",
    "rewrite_expr",
    "run_program",
    "try_vectorize_trace",
]
