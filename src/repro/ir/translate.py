"""Automatic single-assignment conversion ("translator", §5).

The paper notes that conventional loops can be converted to single
assignment form by "an automatic conversion tool ... These translators
will tend to increase the amount of memory used for array storage,
especially in those programs that reuse arrays many times in the same
loop."  The standard such transformation is *array expansion*: a cell
that is overwritten on every iteration of a loop gains a new leading
*version* dimension indexed by that loop, so each iteration writes a
fresh cell.

This module implements exactly that transformation for the
accumulation/self-update pattern the static checker
(:mod:`repro.ir.sa_check`) flags as a definite violation — a target
whose subscripts do not vary with an enclosing loop variable::

    DO i = 1, n                    DO i = 1, n
      S(j) = S(j) + B(i)     ==>     S__sa(i, j) = S__sa(i-1, j) + B(i)

Reads of the expanded array *after* the loop are redirected to the
final version.  Reads *inside* the loop must use the same subscripts as
the target (the previous version is then well defined); anything more
general requires full dataflow analysis, which the tool rejects with a
:class:`TranslationError` rather than silently producing wrong code.
The memory cost is the trip count — the paper's observation that
translators "increase the amount of memory used for array storage" is
directly measurable via :func:`expansion_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .expr import BinOp, Call, Const, Expr, Max, Min, Ref, Var
from .loops import ArrayDecl, Loop, Program
from .stmt import Assign, Reduction, Statement
from .sa_check import check_program

__all__ = [
    "TranslationError",
    "auto_convert",
    "expand_array",
    "expansion_cost",
    "rewrite_expr",
]


class TranslationError(RuntimeError):
    """The requested conversion is outside the tool's sound fragment."""


def rewrite_expr(expr: Expr, fn: Callable[[Ref], Expr | None]) -> Expr:
    """Rebuild ``expr`` bottom-up, replacing Refs where ``fn`` returns non-None."""
    if isinstance(expr, Ref):
        new_subs = [rewrite_expr(s, fn) for s in expr.subs]
        rebuilt = Ref(expr.array, new_subs)
        replacement = fn(rebuilt)
        return replacement if replacement is not None else rebuilt
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rewrite_expr(expr.lhs, fn), rewrite_expr(expr.rhs, fn))
    if isinstance(expr, Call):
        return Call(expr.func, *(rewrite_expr(a, fn) for a in expr.args))
    if isinstance(expr, Min):
        return Min(rewrite_expr(expr.lhs, fn), rewrite_expr(expr.rhs, fn))
    if isinstance(expr, Max):
        return Max(rewrite_expr(expr.lhs, fn), rewrite_expr(expr.rhs, fn))
    if isinstance(expr, (Const, Var)):
        return expr
    raise TypeError(f"cannot rewrite {type(expr).__name__}")  # pragma: no cover


def _subs_equal(a: Sequence[Expr], b: Sequence[Expr]) -> bool:
    """Syntactic-affine equality of two subscript lists."""
    if len(a) != len(b):
        return False
    for ea, eb in zip(a, b):
        fa, fb = ea.affine(), eb.affine()
        if fa is None or fb is None:
            return False
        if (fa - fb).coeffs or (fa - fb).const != 0:
            return False
    return True


@dataclass(frozen=True)
class ExpansionPlan:
    """What :func:`expand_array` will do, for inspection before doing it."""

    array: str
    loop_var: str
    trip_count: int
    new_name: str
    extra_elements: int


def expansion_cost(program: Program, array: str, loop_var: str) -> ExpansionPlan:
    """Compute the memory cost of expanding ``array`` over ``loop_var``."""
    decl = program.arrays[array]
    loop = _find_loop(program, loop_var)
    lo, hi = loop.bounds(program.scalars)
    trips = max(0, (hi - lo) // abs(loop.step) + 1) if loop.step > 0 else max(
        0, (lo - hi) // abs(loop.step) + 1
    )
    new_name = f"{array}__sa"
    return ExpansionPlan(
        array=array,
        loop_var=loop_var,
        trip_count=trips,
        new_name=new_name,
        extra_elements=trips * decl.size,
    )


def _find_loop(program: Program, loop_var: str) -> Loop:
    for loop in program.loops():
        if loop.var == loop_var:
            return loop
    raise KeyError(f"no loop over {loop_var!r} in program {program.name!r}")


def expand_array(program: Program, array: str, loop_var: str) -> Program:
    """Return a new single-assignment program with ``array`` expanded.

    Requirements (checked, with diagnostics):

    * ``array`` is written only inside the loop over ``loop_var``, by
      :class:`Assign` statements whose target subscripts do not involve
      ``loop_var``;
    * every read of ``array`` inside that loop uses the same subscripts
      as the enclosing statement's target (self-update pattern);
    * the loop has constant bounds and unit |step|.
    """
    if array not in program.arrays:
        raise KeyError(f"unknown array {array!r}")
    loop = _find_loop(program, loop_var)
    if abs(loop.step) != 1:
        raise TranslationError(
            f"loop over {loop_var!r} has step {loop.step}; expansion "
            "requires unit step"
        )
    lo, hi = loop.bounds(program.scalars)
    if loop.step > 0:
        trips = max(0, hi - lo + 1)
    else:
        trips = max(0, lo - hi + 1)
    if trips == 0:
        raise TranslationError(f"loop over {loop_var!r} has zero iterations")

    decl = program.arrays[array]
    new_name = f"{array}__sa"
    if new_name in program.arrays:
        raise TranslationError(f"expanded name {new_name!r} already in use")

    # Version expression: 1-based within the loop, 0 = pre-loop seed.
    var = Var(loop_var)
    if loop.step > 0:
        version: Expr = var - lo + 1
    else:
        version = Const(lo) - var + 1
    prev_version = BinOp("-", version, Const(1))
    final_version = Const(trips)

    def transform_stmt(stmt: Statement, in_loop: bool) -> Statement:
        if stmt.target.array == array:
            if not in_loop:
                raise TranslationError(
                    f"array {array!r} is also written outside the loop over "
                    f"{loop_var!r}; expansion would be unsound"
                )
            if isinstance(stmt, Reduction):
                raise TranslationError(
                    f"array {array!r} is a reduction target; use the "
                    "host-processor reduction mechanism instead"
                )
            target_vars: set[str] = set()
            for sub in stmt.target.subs:
                target_vars |= sub.free_vars()
            if loop_var in target_vars:
                raise TranslationError(
                    f"target subscripts of {array!r} already vary with "
                    f"{loop_var!r}; nothing to expand"
                )
            target_subs = stmt.target.subs

            def replace(ref: Ref) -> Expr | None:
                if ref.array != array:
                    return None
                if not _subs_equal(ref.subs, target_subs):
                    raise TranslationError(
                        f"read {ref!r} uses different subscripts than the "
                        f"target; general dataflow expansion is unsupported"
                    )
                return Ref(new_name, [prev_version, *ref.subs])

            new_rhs = rewrite_expr(stmt.rhs, replace)
            new_target = Ref(new_name, [version, *target_subs])
            return Assign(new_target, new_rhs, stmt.label)
        # Statement writes another array; redirect reads of `array`.
        def redirect(ref: Ref) -> Expr | None:
            if ref.array != array:
                return None
            if in_loop:
                raise TranslationError(
                    f"read of {array!r} in a non-updating statement inside "
                    f"the loop over {loop_var!r}; cannot version it soundly"
                )
            return Ref(new_name, [final_version, *ref.subs])

        new_rhs = rewrite_expr(stmt.rhs, redirect)
        new_subs = [rewrite_expr(s, redirect) for s in stmt.target.subs]
        new_target = Ref(stmt.target.array, new_subs)
        if isinstance(stmt, Reduction):
            return Reduction(new_target, new_rhs, stmt.label, op=stmt.op)
        return Assign(new_target, new_rhs, stmt.label)

    def transform_body(
        body: Sequence[Loop | Statement], in_loop: bool
    ) -> list[Loop | Statement]:
        out: list[Loop | Statement] = []
        for node in body:
            if isinstance(node, Loop):
                child_in = in_loop or node is loop
                out.append(
                    Loop(
                        node.var,
                        node.lo,
                        node.hi,
                        transform_body(node.body, child_in),
                        node.step,
                    )
                )
            else:
                out.append(transform_stmt(node, in_loop))
        return out

    new_body = transform_body(program.body, False)

    new_arrays = dict(program.arrays)
    del new_arrays[array]
    # Version 0 holds the seed values, so the expanded array is "inout".
    new_arrays[new_name] = ArrayDecl(
        new_name, (trips + 1, *decl.shape), "inout"
    )
    new_outputs = tuple(
        new_name if name == array else name for name in program.outputs
    )
    converted = Program(
        name=f"{program.name}__expanded_{array}",
        arrays=new_arrays,
        scalars=dict(program.scalars),
        body=new_body,
        description=(
            f"{program.description} [array {array!r} expanded over "
            f"{loop_var!r} by the SA translator]"
        ).strip(),
        outputs=new_outputs,
    )
    return converted.finalize()


def auto_convert(program: Program, max_passes: int = 8) -> Program:
    """Repeatedly expand arrays until the static checker reports no
    definite violation.

    Only the checker's "target does not vary with loop variable"
    findings are actionable; other violations raise
    :class:`TranslationError`.
    """
    current = program
    for _ in range(max_passes):
        report = check_program(current)
        violations = report.violations()
        if not violations:
            return current
        finding = violations[0]
        stmt = next(
            s for s in current.statements() if s.stmt_id == finding.stmt_id
        )
        if "do not vary with loop variable" not in finding.message:
            raise TranslationError(
                f"cannot auto-convert violation: {finding.message}"
            )
        # Innermost missing loop variable is named in the finding; recover
        # it by re-deriving: pick the innermost enclosing loop var absent
        # from the target subscripts.
        loop_var = _innermost_missing_var(current, stmt)
        current = expand_array(current, stmt.target.array, loop_var)
    raise TranslationError(
        f"auto-conversion did not converge after {max_passes} passes"
    )


def _innermost_missing_var(program: Program, stmt: Statement) -> str:
    """Innermost loop variable not used by the statement's target."""
    chain: list[str] = []

    def rec(body: Sequence[Loop | Statement], loops: list[str]) -> list[str] | None:
        for node in body:
            if isinstance(node, Loop):
                found = rec(node.body, loops + [node.var])
                if found is not None:
                    return found
            elif node is stmt:
                return loops
        return None

    enclosing = rec(program.body, [])
    if enclosing is None:  # pragma: no cover - defensive
        raise KeyError("statement not found in program")
    used = set()
    for sub in stmt.target.subs:
        used |= sub.free_vars()
    for var in reversed(enclosing):
        if var not in used:
            return var
    raise TranslationError(
        "no missing loop variable; statement is already single assignment"
    )
