"""Reference interpreter for IR programs.

Runs a kernel sequentially (as the Fortran original would), producing

* the final contents of every array, used to validate the IR kernels
  against independent NumPy references, and
* an ordered :class:`~repro.ir.trace.Trace` of every array-element
  access, which drives the multiprocessor simulation of §6.

The interpreter also enforces the paper's single-assignment discipline
dynamically (§3): writing a cell twice raises
:class:`SingleAssignmentError` ("writing more than once results in a
runtime error"), and reading an undefined cell raises
:class:`UndefinedReadError` (on the real machine such a read would
block forever if no producer exists; sequential execution makes it
immediately detectable).  :class:`~repro.ir.stmt.Reduction` targets are
exempt, mirroring the host-processor accumulation mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..memory.linearize import linearize
from .expr import EvalContext
from .loops import ArrayDecl, Loop, Program
from .stmt import Assign, Reduction, Statement
from .trace import Trace, TraceBuilder

__all__ = [
    "InterpResult",
    "Interpreter",
    "SingleAssignmentError",
    "UndefinedReadError",
    "run_program",
]


class SingleAssignmentError(RuntimeError):
    """A cell was written more than once (forbidden by §3)."""


class UndefinedReadError(RuntimeError):
    """A cell was read before any producer defined it."""


@dataclass
class InterpResult:
    """Outcome of interpreting a program."""

    values: dict[str, np.ndarray]
    trace: Trace
    # Per-array boolean masks of cells that are defined after execution
    # (seeded or written); undefined cells of `values` read as 0.
    defined: dict[str, np.ndarray] = field(default_factory=dict)
    writes: int = 0
    reads: int = 0
    # Cells of inout arrays whose seed value was read and that were later
    # overwritten.  Nonempty means the program relies on destructive
    # update and is not a faithful single-assignment kernel.
    seed_hazards: list[tuple[str, int]] = field(default_factory=list)


class _ArrayState:
    """Value buffer plus definedness mask for one array.

    Initial data uses the NaN-means-undefined convention: a seeded
    ``inout`` array marks the cells the kernel will produce as NaN, so
    only genuine seed cells count as defined (and the write-once check
    applies to everything else).
    """

    __slots__ = ("decl", "values", "defined", "seed_read")

    def __init__(self, decl: ArrayDecl, init: np.ndarray | None) -> None:
        self.decl = decl
        if init is not None:
            buf = np.array(init, dtype=np.float64).reshape(decl.shape).ravel()
            self.defined = ~np.isnan(buf)
            self.values = np.where(self.defined, buf, 0.0)
        else:
            self.values = np.zeros(decl.size, dtype=np.float64)
            self.defined = np.zeros(decl.size, dtype=bool)
        # For inout arrays: which seeded cells have been read (to detect
        # read-then-overwrite hazards).
        self.seed_read = np.zeros(decl.size, dtype=bool)


class Interpreter:
    """Executes one :class:`~repro.ir.loops.Program`.

    Parameters
    ----------
    program:
        The kernel to run (must be finalized).
    inputs:
        Initial contents for every ``input``/``inout`` array.
    check_sa:
        When True (default), enforce write-once and write-before-read.
    collect_trace:
        When False, skip trace recording (faster value-only runs).
    """

    def __init__(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        *,
        check_sa: bool = True,
        collect_trace: bool = True,
    ) -> None:
        self.program = program
        self.check_sa = check_sa
        self.collect_trace = collect_trace
        self._states: dict[str, _ArrayState] = {}
        for name, decl in program.arrays.items():
            if decl.role in ("input", "inout"):
                if name not in inputs:
                    raise KeyError(f"missing initial data for array {name!r}")
                self._states[name] = _ArrayState(decl, inputs[name])
            else:
                if name in inputs:
                    raise ValueError(
                        f"array {name!r} is an output; initial data not allowed"
                    )
                self._states[name] = _ArrayState(decl, None)
        # For output arrays nothing is seeded, so written-mask tracking is
        # enough; for inout arrays every cell starts defined and we track
        # overwrites via a separate written mask.
        self._written: dict[str, np.ndarray] = {
            name: np.zeros(state.decl.size, dtype=bool)
            for name, state in self._states.items()
        }
        names = sorted(program.arrays)
        self._trace = TraceBuilder(
            names, [program.arrays[n].size for n in names]
        )
        self._seed_hazards: list[tuple[str, int]] = []
        self.writes = 0
        self.reads = 0

    # -- element access -------------------------------------------------------
    def _read(self, array: str, idx: tuple[int, ...]) -> float:
        state = self._states[array]
        flat = linearize(idx, state.decl.shape)
        if self.check_sa and not state.defined[flat]:
            raise UndefinedReadError(
                f"read of undefined cell {array}{tuple(idx)} "
                f"(program {self.program.name!r})"
            )
        if state.decl.role == "inout" and not self._written[array][flat]:
            state.seed_read[flat] = True
        self.reads += 1
        if self.collect_trace:
            self._trace.record_read(self._trace.array_id(array), flat)
        return float(state.values[flat])

    def _write(
        self, array: str, idx: tuple[int, ...], value: float, *, reduction: bool
    ) -> int:
        state = self._states[array]
        flat = linearize(idx, state.decl.shape)
        if self.check_sa and not reduction and self._written[array][flat]:
            raise SingleAssignmentError(
                f"second write to cell {array}{tuple(idx)} "
                f"(program {self.program.name!r})"
            )
        if (
            state.decl.role == "inout"
            and state.seed_read[flat]
            and not self._written[array][flat]
        ):
            self._seed_hazards.append((array, flat))
        state.values[flat] = value
        state.defined[flat] = True
        self._written[array][flat] = True
        self.writes += 1
        return flat

    # -- execution -------------------------------------------------------------
    def run(self) -> InterpResult:
        scalars = dict(self.program.scalars)
        ctx = EvalContext(scalars, self._read)
        self._exec_body(self.program.body, ctx)
        values = {
            name: state.values.reshape(state.decl.shape).copy()
            for name, state in self._states.items()
        }
        defined = {
            name: state.defined.reshape(state.decl.shape).copy()
            for name, state in self._states.items()
        }
        trace = self._trace.freeze() if self.collect_trace else _empty_trace()
        return InterpResult(
            values=values,
            trace=trace,
            defined=defined,
            writes=self.writes,
            reads=self.reads,
            seed_hazards=list(self._seed_hazards),
        )

    def _exec_body(self, body: Sequence[Loop | Statement], ctx: EvalContext) -> None:
        for node in body:
            if isinstance(node, Loop):
                for value in node.iter_values(ctx.scalars):
                    ctx.scalars[node.var] = value
                    self._exec_body(node.body, ctx)
                # Fortran leaves the variable holding its final value; no
                # kernel relies on it, so drop it to catch stale uses.
                ctx.scalars.pop(node.var, None)
            else:
                self._exec_statement(node, ctx)

    def _exec_statement(self, stmt: Statement, ctx: EvalContext) -> None:
        idx = tuple(
            int(round(sub.evaluate(ctx))) for sub in stmt.target.subs
        )
        if isinstance(stmt, Reduction):
            increment = stmt.rhs.evaluate(ctx)
            state = self._states[stmt.target.array]
            flat = linearize(idx, state.decl.shape)
            if state.defined[flat]:
                value = stmt.fold(float(state.values[flat]), increment)
            else:
                value = increment
            flat = self._write(stmt.target.array, idx, value, reduction=True)
            is_reduction = True
        elif isinstance(stmt, Assign):
            value = stmt.rhs.evaluate(ctx)
            flat = self._write(stmt.target.array, idx, value, reduction=False)
            is_reduction = False
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {type(stmt).__name__}")
        if self.collect_trace:
            self._trace.commit_instance(
                stmt.stmt_id,
                self._trace.array_id(stmt.target.array),
                flat,
                is_reduction,
            )


def _empty_trace() -> Trace:
    builder = TraceBuilder((), ())
    return builder.freeze()


def run_program(
    program: Program,
    inputs: Mapping[str, np.ndarray],
    *,
    check_sa: bool = True,
    collect_trace: bool = True,
) -> InterpResult:
    """Convenience wrapper: interpret ``program`` over ``inputs``."""
    return Interpreter(
        program, inputs, check_sa=check_sa, collect_trace=collect_trace
    ).run()
