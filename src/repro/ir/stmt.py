"""Statement nodes for the loop-nest IR.

Two statement forms cover every kernel in the paper:

* :class:`Assign` — a single-assignment array-element definition,
  ``A(subs...) = rhs``.  Under the paper's owner-computes rule the PE
  that owns the page containing ``A(subs...)`` executes the statement
  (§2, "control partitioning").

* :class:`Reduction` — an accumulation such as ``Q = Q + Z(k) * X(k)``
  (Livermore kernel 3).  Strict single assignment forbids rewriting a
  cell, so reductions are the paper's "vector to scalar operations"
  future-work item (§9): they are routed to the *host processor* of the
  accumulator, which collects contributions.  The interpreter folds the
  values; the simulator charges all reads to the accumulator's owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from .expr import Expr, Ref, as_expr

__all__ = ["Assign", "Reduction", "Statement"]

_REDUCE_OPS: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "max": max,
    "min": min,
}


@dataclass
class Statement:
    """Common base: a target array reference plus a right-hand side."""

    target: Ref
    rhs: Expr
    label: str = ""
    # Filled in by Program.finalize(); unique per statement, stable across runs.
    stmt_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.target, Ref):
            raise TypeError("statement target must be a Ref")
        self.rhs = as_expr(self.rhs)

    def reads(self) -> Iterator[Ref]:
        """All array references read by this statement (RHS plus any
        indirect subscripts on the target)."""
        yield from self.rhs.refs()
        for sub in self.target.subs:
            yield from sub.refs()

    def arrays_read(self) -> set[str]:
        return {ref.array for ref in self.reads()}

    def free_vars(self) -> set[str]:
        names = self.rhs.free_vars()
        for sub in self.target.subs:
            names |= sub.free_vars()
        return names


@dataclass
class Assign(Statement):
    """``target = rhs`` — defines one array element exactly once."""

    def __repr__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"Assign({self.target!r} = {self.rhs!r}){tag}"


@dataclass
class Reduction(Statement):
    """``target = op(target, rhs)`` — accumulation into one cell.

    ``op`` is one of ``+``, ``*``, ``max``, ``min``.  The reduction
    relaxes single assignment for exactly one cell per loop, mirroring
    the paper's host-processor collection mechanism.
    """

    op: str = "+"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.op not in _REDUCE_OPS:
            raise ValueError(f"unsupported reduction op {self.op!r}")

    def fold(self, acc: float, value: float) -> float:
        return _REDUCE_OPS[self.op](acc, value)

    def __repr__(self) -> str:
        return f"Reduction({self.target!r} {self.op}= {self.rhs!r})"


def _all_statements(body: Sequence[object]) -> Iterator[Statement]:
    """Shared helper: depth-first statement iterator over a loop body."""
    from .loops import Loop  # local import to avoid a cycle

    for node in body:
        if isinstance(node, Statement):
            yield node
        elif isinstance(node, Loop):
            yield from _all_statements(node.body)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected IR node {type(node).__name__}")
