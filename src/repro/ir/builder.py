"""A small fluent DSL for writing IR kernels.

Kernels written with :class:`ProgramBuilder` read close to the Fortran
in the paper::

    b = ProgramBuilder("hydro_fragment")
    X = b.output("X", (n + 1,))
    Y, ZX = b.input("Y", (n + 1,)), b.input("ZX", (n + 12,))
    Q, R, T = b.scalar(Q=0.5, R=1.5, T=0.25)
    k = b.index("k")
    with b.loop(k, 1, n):
        b.assign(X[k], Q + Y[k] * (R * ZX[k + 10] + T * ZX[k + 11]))
    prog = b.build()

Array handles support natural subscripting (``ZX[k + 10]``,
``ZA[j - 1, kk + 1]``) and produce :class:`~repro.ir.expr.Ref` nodes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .expr import Ref, Var, as_expr
from .loops import ArrayDecl, Loop, Program
from .stmt import Assign, Reduction, Statement

__all__ = ["ArrayHandle", "ProgramBuilder"]


class ArrayHandle:
    """Subscriptable proxy for a declared array."""

    __slots__ = ("name", "shape")

    def __init__(self, name: str, shape: tuple[int, ...]) -> None:
        self.name = name
        self.shape = shape

    def __getitem__(self, subs: "Expr | int | tuple") -> Ref:
        if not isinstance(subs, tuple):
            subs = (subs,)
        if len(subs) != len(self.shape):
            raise IndexError(
                f"array {self.name!r} has rank {len(self.shape)}, "
                f"got {len(subs)} subscripts"
            )
        return Ref(self.name, [as_expr(s) for s in subs])

    def __repr__(self) -> str:
        return f"ArrayHandle({self.name!r}, shape={self.shape})"


class ProgramBuilder:
    """Accumulates declarations and loop structure, then builds a Program."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._arrays: dict[str, ArrayDecl] = {}
        self._scalars: dict[str, float] = {}
        self._body: list[Loop | Statement] = []
        self._stack: list[list[Loop | Statement]] = [self._body]
        self._outputs: list[str] = []

    # -- declarations --------------------------------------------------------
    def _declare(self, name: str, shape: Sequence[int], role: str) -> ArrayHandle:
        if name in self._arrays:
            raise ValueError(f"array {name!r} declared twice")
        if name in self._scalars:
            raise ValueError(f"{name!r} already declared as a scalar")
        decl = ArrayDecl(name, tuple(int(d) for d in shape), role)
        self._arrays[name] = decl
        return ArrayHandle(decl.name, decl.shape)

    def input(self, name: str, shape: Sequence[int]) -> ArrayHandle:
        """Declare a pre-initialised (read-only) array."""
        return self._declare(name, shape, "input")

    def output(self, name: str, shape: Sequence[int]) -> ArrayHandle:
        """Declare an array produced by the kernel (starts undefined)."""
        handle = self._declare(name, shape, "output")
        self._outputs.append(name)
        return handle

    def inout(self, name: str, shape: Sequence[int]) -> ArrayHandle:
        """Declare an array that is partly seeded, partly produced."""
        handle = self._declare(name, shape, "inout")
        self._outputs.append(name)
        return handle

    def scalar(self, **values: float) -> tuple[Var, ...]:
        """Declare named scalar constants; returns Var handles in order."""
        handles = []
        for name, value in values.items():
            if name in self._scalars:
                raise ValueError(f"scalar {name!r} declared twice")
            if name in self._arrays:
                raise ValueError(f"{name!r} already declared as an array")
            self._scalars[name] = float(value)
            handles.append(Var(name))
        if len(handles) == 1:
            return handles[0]  # type: ignore[return-value]
        return tuple(handles)

    @staticmethod
    def index(name: str) -> Var:
        """A loop index variable handle."""
        return Var(name)

    # -- structure -----------------------------------------------------------
    @contextmanager
    def loop(
        self,
        var: Var | str,
        lo: "Expr | int",
        hi: "Expr | int",
        step: int = 1,
    ) -> Iterator[None]:
        """Open a ``DO var = lo, hi, step`` context."""
        name = var.name if isinstance(var, Var) else str(var)
        node = Loop(name, lo, hi, [], step)
        self._stack[-1].append(node)
        self._stack.append(node.body)
        try:
            yield
        finally:
            self._stack.pop()

    def assign(self, target: Ref, rhs: "Expr | int | float", label: str = "") -> Assign:
        """Emit ``target = rhs`` at the current nesting level."""
        stmt = Assign(target, as_expr(rhs), label)
        self._stack[-1].append(stmt)
        return stmt

    def reduce(
        self,
        target: Ref,
        rhs: "Expr | int | float",
        op: str = "+",
        label: str = "",
    ) -> Reduction:
        """Emit ``target = op(target, rhs)`` at the current nesting level."""
        stmt = Reduction(target, as_expr(rhs), label, op=op)
        self._stack[-1].append(stmt)
        return stmt

    # -- finish ---------------------------------------------------------------
    def build(self) -> Program:
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced loop contexts")
        prog = Program(
            name=self.name,
            arrays=dict(self._arrays),
            scalars=dict(self._scalars),
            body=list(self._body),
            description=self.description,
            outputs=tuple(self._outputs),
        )
        return prog.finalize()
