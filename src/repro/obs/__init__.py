"""``repro.obs`` — unified telemetry for the evaluation engine.

Four pieces, one import:

* **event log** (:mod:`.events`): structured JSONL lifecycle events,
  per-process files merged on campaign completion, enabled by
  ``REPRO_OBS=jsonl:<stem>``;
* **spans** (:mod:`.spans`): nestable timed regions emitted into the
  same log, process-safe ids;
* **metrics** (:mod:`.metrics`): ``Counter``/``Gauge``/``Histogram``
  registry unifying the store/cache/service/simulator stat schemas,
  with snapshot-to-dict and Prometheus text export;
* **profiling** (:mod:`.profile`): per-phase replay timings for the
  untimed simulator and the timed machine, feeding per-record columns
  and the ``BENCH_replay.json`` baseline.

Everything degrades to ~zero cost when nothing is listening.
"""

from __future__ import annotations

from .events import (
    HOSTNAME,
    active,
    configure,
    emit,
    event_path,
    merge,
    read_events,
    subscribe,
    unsubscribe,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LegacySnapshot,
    MetricsRegistry,
)
from .profile import collect, enabled, phase
from .progress import ProgressLine
from .spans import current_span_id, span

__all__ = [
    "Counter",
    "HOSTNAME",
    "Gauge",
    "Histogram",
    "LegacySnapshot",
    "MetricsRegistry",
    "ProgressLine",
    "active",
    "collect",
    "configure",
    "current_span_id",
    "emit",
    "enabled",
    "event_path",
    "merge",
    "phase",
    "read_events",
    "span",
    "subscribe",
    "unsubscribe",
]
