"""Structured JSON-lines event log with per-process files.

The sink is configured from ``REPRO_OBS=jsonl:<stem>`` (or
programmatically via :func:`configure`); every process — the campaign
parent, ``multiprocessing`` pool workers, ``repro serve`` pool
workers, remote fleet workers — appends to its own
``<stem>-<host>-<pid>.jsonl`` so no file is ever shared across
processes *or hosts* (two machines sharing one store root can reuse a
pid; the hostname prefix keeps their telemetry apart), exactly like
the store's write-ahead touch files.  :func:`merge` concatenates the
per-process files into ``<stem>.jsonl`` in timestamp order *without*
deleting the sources: long-lived service workers keep their file
handles open, and deleting under them would silently drop events from
the next campaign.  Identical records are merged once, so re-merging
an already-merged stem is idempotent.

When no sink and no in-process subscriber is active, :func:`emit`
returns immediately after one boolean check — instrumentation in hot
paths stays ~free.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "active",
    "configure",
    "emit",
    "event_path",
    "merge",
    "read_events",
    "subscribe",
    "unsubscribe",
]

_ENV = "REPRO_OBS"

#: This host's name, reduced to filename-safe characters: it prefixes
#: per-process sink filenames and span ids so telemetry merged across
#: hosts sharing one store root can never collide on a reused pid.
HOSTNAME = (
    re.sub(r"[^A-Za-z0-9_.-]+", "-", socket.gethostname() or "")
    or "localhost"
)

_lock = threading.Lock()
#: merged-log stem (``<stem>.jsonl`` after merge); None → sink disabled
_stem: Path | None = None
#: raw env value the current configuration was parsed from, so a
#: changed environment (tests, spawned workers) reconfigures lazily
_env_seen: str | None = None
#: True once :func:`configure` pinned the sink regardless of the env
_pinned = False
_fh = None
_fh_pid: int | None = None
_subscribers: list[Callable[[dict], None]] = []


def _parse(spec: str) -> Path:
    """``jsonl:<stem>`` → stem path (a trailing ``.jsonl`` is shed)."""
    scheme, _, rest = spec.partition(":")
    if scheme != "jsonl" or not rest:
        raise ValueError(
            f"unsupported {_ENV} spec {spec!r} (expected 'jsonl:<path>')"
        )
    stem = Path(rest)
    if stem.suffix == ".jsonl":
        stem = stem.with_suffix("")
    return stem


def configure(spec: str | None) -> None:
    """Set the event sink: ``"jsonl:<stem>"`` enables, ``None`` disables.

    An explicit call pins the configuration — later changes to the
    ``REPRO_OBS`` environment variable are ignored until
    ``configure(None)`` unpins (which also re-arms env auto-detection).
    """
    global _stem, _pinned, _fh, _fh_pid, _env_seen
    with _lock:
        if _fh is not None:
            try:
                _fh.close()
            except OSError:
                pass
        _fh = None
        _fh_pid = None
        if spec:
            _stem = _parse(spec)
            _pinned = True
        else:
            _stem = None
            _pinned = False
            _env_seen = None


def _sync_env() -> None:
    """Adopt ``REPRO_OBS`` from the environment when not pinned."""
    global _stem, _env_seen, _fh, _fh_pid
    env = os.environ.get(_ENV)
    if env == _env_seen:
        return
    with _lock:
        if _pinned or env == _env_seen:
            return
        _env_seen = env
        if _fh is not None:
            try:
                _fh.close()
            except OSError:
                pass
            _fh = None
            _fh_pid = None
        _stem = _parse(env) if env else None


def active() -> bool:
    """True when events go somewhere (file sink or subscriber)."""
    if _subscribers:
        return True
    if not _pinned:
        _sync_env()
    return _stem is not None


def event_path() -> Path | None:
    """Per-process sink path for the current configuration (or None)."""
    if not active() or _stem is None:
        return None
    return _stem.parent / f"{_stem.name}-{HOSTNAME}-{os.getpid()}.jsonl"


def _sink():
    """This process's open sink handle (reopened after ``fork``)."""
    global _fh, _fh_pid
    pid = os.getpid()
    if _fh is not None and _fh_pid == pid:
        return _fh
    with _lock:
        if _fh is not None and _fh_pid == pid:
            return _fh
        if _fh is not None:
            # inherited across fork — the parent owns it; just drop ours
            _fh = None
        path = _stem.parent / f"{_stem.name}-{HOSTNAME}-{pid}.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        _fh = open(path, "a", encoding="utf-8")
        _fh_pid = pid
        return _fh


def emit(event: str, **fields: object) -> None:
    """Record one structured event (no-op when nothing listens).

    Failures to write are swallowed: telemetry must never take down
    an evaluation.
    """
    if not active():
        return
    record = {
        "ts": time.time(),
        "host": HOSTNAME,
        "pid": os.getpid(),
        "event": event,
    }
    record.update(fields)
    for fn in list(_subscribers):
        try:
            fn(record)
        except Exception:
            pass
    if _stem is None:
        return
    try:
        fh = _sink()
        fh.write(json.dumps(record, default=str) + "\n")
        fh.flush()
    except OSError:
        pass


def subscribe(fn: Callable[[dict], None]) -> None:
    """Add an in-process subscriber called with every event dict."""
    if fn not in _subscribers:
        _subscribers.append(fn)


def unsubscribe(fn: Callable[[dict], None]) -> None:
    if fn in _subscribers:
        _subscribers.remove(fn)


def read_events(path: str | os.PathLike) -> Iterator[dict]:
    """Parse a JSONL event file, skipping torn/invalid lines."""
    path = Path(path)
    if not path.exists():
        return
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def merge(stem: str | os.PathLike | None = None) -> Path | None:
    """Merge every ``<stem>-<host>-<pid>.jsonl`` into ``<stem>.jsonl``.

    Events are ordered by timestamp across processes and hosts.
    Source files are left in place (open handles in long-lived workers
    stay valid); the merged file is rewritten from scratch each call
    and *identical records are kept once*, so merging is idempotent
    even when a part file is itself the product of an earlier merge
    over a narrower stem (``events-hostA.jsonl`` matching the
    ``events-*`` glob must not double its records).  Returns the
    merged path, or ``None`` when no sink is configured and no
    ``stem`` was given.
    """
    if stem is None:
        if not active() or _stem is None:
            return None
        base = _stem
    else:
        base = Path(stem)
        if base.suffix == ".jsonl":
            base = base.with_suffix("")
    merged = base.parent / f"{base.name}.jsonl"
    parts = sorted(base.parent.glob(f"{base.name}-*.jsonl"))
    events: list[dict] = []
    seen: set[str] = set()
    for part in parts:
        if part == merged:
            continue
        for record in read_events(part):
            canon = json.dumps(record, sort_keys=True, default=str)
            if canon in seen:
                continue
            seen.add(canon)
            events.append(record)
    events.sort(key=lambda e: e.get("ts", 0.0))
    # Unique temp name: concurrent merges (two campaign streams
    # finishing together) must not replace each other's temp file out
    # from underneath — last atomic rename simply wins.
    tmp = merged.with_name(
        f"{merged.name}.tmp-{os.getpid()}-{threading.get_ident()}"
    )
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in events:
            fh.write(json.dumps(record, default=str) + "\n")
    os.replace(tmp, merged)
    return merged
