"""Nestable tracing spans over the event log.

A span is a timed region: ``with obs.span("store.build_trace",
ref=ref): ...``.  On exit it emits a single ``span`` event carrying
its id, its parent's id (spans nest via a thread-local stack), the
start timestamp and the duration — enough to rebuild the tree offline
from the merged JSONL.  Ids are ``<host>-<pid:x>-<seq:x>`` so they
stay unique when multiprocessing workers, service pool workers and
remote fleet workers (which may reuse a pid across hosts) all emit
into their own per-process files.

When no sink is active :func:`span` returns a shared no-op context
manager — one function call and one boolean check, nothing else.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from . import events

__all__ = ["current_span_id", "span"]

_counter = itertools.count(1)
_tls = threading.local()


class _NullSpan:
    """Stateless, reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def _stack() -> list[str]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span_id() -> str | None:
    """Id of the innermost open span on this thread (or None)."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent_id", "t0", "wall0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        stack = _stack()
        self.span_id = f"{events.HOSTNAME}-{os.getpid():x}-{next(_counter):x}"
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.wall0 = time.time()
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self.t0
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        events.emit(
            "span",
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            t0=self.wall0,
            dur_s=dur,
            ok=exc_type is None,
            **self.attrs,
        )
        return False


def span(name: str, **attrs: object):
    """A timed, nestable tracing region (no-op when obs is inactive)."""
    if not events.active():
        return _NULL_SPAN
    return _Span(name, attrs)
