"""CLI progress rendering as an event-log subscriber.

:class:`ProgressLine` subscribes to the in-process event stream and
redraws one carriage-return line from ``campaign.point`` events — the
sweep progress the CLI used to print from a bespoke path inside its
consume loop.  Routing it through the event log means every producer
of points (serial executor, parallel executor, service backend) drives
the same renderer, :meth:`close` *guarantees* the final newline, and
:meth:`clear` lets ``repro serve`` wipe the line before printing its
stats table so the two never interleave mid-row.
"""

from __future__ import annotations

import sys
from typing import TextIO

from . import events

__all__ = ["ProgressLine"]


class ProgressLine:
    """Render campaign progress events as a single rewriting line."""

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream if stream is not None else sys.stderr
        self._width = 0
        self._dirty = False
        self._closed = False

    # -- subscriber lifecycle ---------------------------------------------
    def __enter__(self) -> "ProgressLine":
        events.subscribe(self)
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __call__(self, event: dict) -> None:
        if event.get("event") != "campaign.point":
            return
        done = event.get("done", "?")
        total = event.get("total", "?")
        label = event.get("kernel", "")
        scenario = event.get("scenario", "")
        suffix = " (cached)" if event.get("cache_hit") else ""
        self.update(f"  [{done}/{total}] {label} {scenario}{suffix}")

    # -- rendering --------------------------------------------------------
    def update(self, line: str) -> None:
        if self._closed:
            return
        self._width = max(self._width, len(line))
        try:
            print(
                f"\r{line.ljust(self._width)}",
                end="",
                file=self._stream,
                flush=True,
            )
        except (OSError, ValueError):  # closed/broken stream
            return
        self._dirty = True

    def clear(self) -> None:
        """Blank the line (e.g. before printing a table over it)."""
        if self._dirty:
            try:
                print(
                    "\r" + " " * self._width + "\r",
                    end="",
                    file=self._stream,
                    flush=True,
                )
            except (OSError, ValueError):
                pass
            self._dirty = False

    def close(self) -> None:
        """Detach from the event stream and end the line cleanly."""
        if self._closed:
            return
        events.unsubscribe(self)
        if self._dirty:
            try:
                print(file=self._stream, flush=True)
            except (OSError, ValueError):
                pass
            self._dirty = False
        self._closed = True
