"""One metrics vocabulary for the four ad-hoc counter schemas.

The engine grew four disjoint stats surfaces —
:class:`~repro.engine.store.StoreCounters`, the cache layer's
``CacheStats``, ``EvalService.stats()`` and the simulator's
``AccessStats`` — each with its own names and nesting.  This module
gives them one registry of :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments with a stable ``snapshot()`` dict
(snake_case; monotonic counts suffixed ``_total``) and a
Prometheus-style text export.

:class:`LegacySnapshot` keeps the previous schema readable for one
release: legacy keys resolve through ``__getitem__``/``get`` with a
:class:`DeprecationWarning` but are excluded from iteration and JSON
serialization, so new output is clean while old callers keep working.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LegacySnapshot",
    "MetricsRegistry",
]


def _total_name(name: str) -> str:
    return name if name.endswith("_total") else f"{name}_total"


@dataclass
class Counter:
    """Monotonically increasing count (snapshots as ``<name>_total``)."""

    name: str
    help: str = ""
    value: int = 0

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {_total_name(self.name): self.value}


@dataclass
class Gauge:
    """Point-in-time value that may go up or down."""

    name: str
    help: str = ""
    value: float = 0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, object]:
        return {self.name: self.value}


@dataclass
class Histogram:
    """Streaming summary of observations (count / sum / min / max)."""

    name: str
    help: str = ""
    count: int = 0
    total: float = 0.0
    vmin: float | None = None
    vmax: float | None = None

    kind = "histogram"

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    def snapshot(self) -> dict[str, object]:
        return {
            f"{self.name}_count": self.count,
            f"{self.name}_sum": self.total,
            f"{self.name}_min": self.vmin,
            f"{self.name}_max": self.vmax,
        }


@dataclass
class MetricsRegistry:
    """Named instruments with one snapshot and one text export."""

    _metrics: dict[str, Counter | Gauge | Histogram] = field(
        default_factory=dict
    )
    #: non-numeric identity fields carried into the snapshot verbatim
    _labels: dict[str, object] = field(default_factory=dict)

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def label(self, name: str, value: object) -> None:
        """Attach a non-numeric field (policy name, root path, ...)."""
        self._labels[name] = value

    def snapshot(self) -> dict[str, object]:
        """Flat snake_case dict; counters suffixed ``_total``."""
        out: dict[str, object] = dict(self._labels)
        for name in self._metrics:
            out.update(self._metrics[name].snapshot())
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (labels become ``# HELP`` noise-free
        comments, non-numeric values are skipped)."""
        lines: list[str] = []
        for name, value in self._labels.items():
            lines.append(f"# {name}: {value}")
        for name, metric in self._metrics.items():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in metric.snapshot().items():
                if value is None:
                    continue
                lines.append(f"{key} {value}")
        return "\n".join(lines) + "\n"


class LegacySnapshot(dict):
    """A snapshot dict that still answers for one-release-old keys.

    Iteration, ``len``, ``keys`` and JSON serialization see only the
    canonical schema; looking up a legacy key succeeds with a
    :class:`DeprecationWarning`.  ``aliases`` maps each legacy key to
    either the canonical key it renamed to or a callable building the
    legacy value from the snapshot.
    """

    def __init__(
        self,
        data: Mapping[str, object],
        aliases: Mapping[str, str | Callable[[Mapping], object]],
    ):
        super().__init__(data)
        self._aliases = dict(aliases)

    def _resolve(self, key: str) -> object:
        warnings.warn(
            f"stats key {key!r} is deprecated; use the canonical "
            "snake_case schema (see docs/observability.md)",
            DeprecationWarning,
            stacklevel=3,
        )
        target = self._aliases[key]
        if callable(target):
            return target(self)
        return dict.__getitem__(self, target)

    def __getitem__(self, key):
        if not dict.__contains__(self, key) and key in self._aliases:
            return self._resolve(key)
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key) -> bool:
        return dict.__contains__(self, key) or key in self._aliases
