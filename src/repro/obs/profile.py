"""Per-phase replay profiling hooks.

The untimed simulator and the timed machine mark their phases with
:func:`phase` — interpret / classify / cache_sim / reduction on the
untimed side, setup / event_loop on the timed side.  A phase does two
independent things, each only when someone is listening:

* accumulate wall seconds into the thread-local collector opened by
  :func:`collect` (how per-record ``profile_<phase>_s`` metric columns
  and ``BENCH_replay.json`` are gathered), and
* emit a ``phase.<name>`` span when the event sink is active, so the
  merged trace's span tree shows where evaluation time went.

With neither active, :func:`phase` returns a shared no-op context
manager after two cheap checks — the hot loop stays unperturbed.
Collection is switched on per-evaluation by the backends when the
``REPRO_PROFILE`` environment variable is set (see :func:`enabled`)
or programmatically via :func:`collect`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from . import events
from .spans import _NULL_SPAN, span

__all__ = ["collect", "enabled", "phase"]

_ENV = "REPRO_PROFILE"
_tls = threading.local()


def enabled() -> bool:
    """True when ``REPRO_PROFILE`` asks for per-record phase columns."""
    return os.environ.get(_ENV, "") not in ("", "0")


@contextmanager
def collect() -> Iterator[dict[str, float]]:
    """Collect phase seconds on this thread into the yielded dict."""
    previous = getattr(_tls, "collector", None)
    collector: dict[str, float] = {}
    _tls.collector = collector
    try:
        yield collector
    finally:
        _tls.collector = previous


class _Phase:
    __slots__ = ("name", "collector", "inner", "t0")

    def __init__(self, name: str, collector, inner):
        self.name = name
        self.collector = collector
        self.inner = inner

    def __enter__(self):
        self.t0 = time.perf_counter()
        self.inner.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.inner.__exit__(exc_type, exc, tb)
        if self.collector is not None:
            elapsed = time.perf_counter() - self.t0
            self.collector[self.name] = (
                self.collector.get(self.name, 0.0) + elapsed
            )
        return False


def phase(name: str):
    """Mark one profiling phase (no-op unless collecting or tracing)."""
    collector = getattr(_tls, "collector", None)
    if collector is None and not events.active():
        return _NULL_SPAN
    inner = span(f"phase.{name}")
    return _Phase(name, collector, inner)
